/// \file cde.hpp
/// \brief Complex document editing (paper, Section 4.3; [40]).
///
/// CDE-expressions combine documents of an SLP-represented database with
///   concat(D, D'), extract(D, i, j), delete(D, i, j), insert(D, D', k),
///   copy(D, i, j, k)
/// (1-based inclusive positions, following the paper). Evaluating an
/// expression φ adds the document eval(φ) to the database in time
/// O(|φ| * log d) -- each basic operation is a constant number of AVL
/// splits/concats on strongly balanced SLPs -- *without* decompressing any
/// document. Expressions are parsed from a small textual algebra, e.g.
///     "concat(insert(D3, extract(D7, 5, 21), 12), D1)".
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "slp/slp.hpp"
#include "util/common.hpp"

namespace spanners {

/// Operations of the CDE algebra.
enum class CdeOp : uint8_t { kDocument, kConcat, kExtract, kDelete, kInsert, kCopy };

/// A CDE expression tree.
struct CdeExpr {
  CdeOp op = CdeOp::kDocument;
  std::size_t document_index = 0;            ///< kDocument: 0-based index
  std::vector<std::unique_ptr<CdeExpr>> children;
  uint64_t i = 0, j = 0, k = 0;              ///< positions (1-based, inclusive)

  /// Number of operations in the expression (|φ|).
  std::size_t size() const;
};

/// The 0-based document indices referenced by \p expr (sorted, unique).
/// Callers with sparse document sets (the store's commit path) use this to
/// reject references to dropped documents before validation.
std::vector<std::size_t> CdeDocumentRefs(const CdeExpr& expr);

/// Renders \p expr back to the textual algebra ParseCdeChecked accepts;
/// parse-then-render is the identity on canonical input. The sharded store
/// (src/server/cluster.hpp) uses this to rewrite cluster document ids into
/// shard-local ones without touching the expression structure.
std::string CdeToString(const CdeExpr& expr);

/// Parses "concat(D1, extract(D2, 5, 21))"-style expressions. Document
/// names are D1, D2, ... (1-based, as in the paper's prose). Canonical
/// checked entry point (Expected convention of util/common.hpp).
Expected<std::unique_ptr<CdeExpr>> ParseCdeChecked(std::string_view text);

/// Parse errors carry a message; expr is null on failure. Compat shim over
/// ParseCdeChecked.
struct CdeParseResult {
  std::unique_ptr<CdeExpr> expr;
  std::string error;

  bool ok() const { return error.empty(); }
};

/// Compat shim: ParseCdeChecked repackaged as a CdeParseResult.
CdeParseResult ParseCde(std::string_view text);

/// Evaluates \p expr against \p database, returning a strongly balanced
/// node for eval(φ) (kNoNode for an empty result). Does not register the
/// result; call database->AddDocument to persist it. Document roots must be
/// strongly balanced for the O(|φ| log d) bound (use Rebalance first).
/// Precondition: the expression is valid for the database (document indices
/// exist, positions in range) -- violations are fatal; use EvalCdeChecked
/// for untrusted expressions.
NodeId EvalCde(DocumentDatabase* database, const CdeExpr& expr);

// --- evaluation over a bare (arena, roots) context --------------------------
//
// The DocumentDatabase entry points above are wrappers over these: any
// owner of an Slp plus a per-document root table can evaluate CDE
// expressions. roots[i] is the root of D(i+1); kNoNode entries are empty
// documents. The store's commit path (src/store/) evaluates against its
// shared epoch arena through these.

/// Validates \p expr against (\p slp, \p roots) without mutating anything.
/// Returns a diagnostic message, empty when valid. O(|φ|).
std::string ValidateCdeOn(const Slp& slp, const std::vector<NodeId>& roots,
                          const CdeExpr& expr);

/// Evaluates \p expr, appending fresh nodes to \p slp. Precondition: the
/// expression is valid for (slp, roots); violations are fatal.
NodeId EvalCdeOn(Slp* slp, const std::vector<NodeId>& roots, const CdeExpr& expr);

/// Validates first (the arena is untouched on error), then evaluates.
Expected<NodeId> EvalCdeOnChecked(Slp* slp, const std::vector<NodeId>& roots,
                                  const CdeExpr& expr);

// --- dirty-path reporting ---------------------------------------------------
//
// The nodes an edit freshly created are exactly the splice set of
// incremental maintenance: every per-node derived state (NFA matrices,
// enumeration matrices) of an *old* node is untouched by an edit, because
// nodes are immutable -- only the fresh nodes along the rebuilt root-to-leaf
// paths need new state. Evaluation appends the id interval
// [num_nodes-before, num_nodes-after); the subset still reachable from the
// result root (splits and concats leave unreachable temporaries behind) is
// the dirty path the store threads through to the prepared-state cache.

/// The dirty path of one tracked CDE evaluation.
struct CdeDirtyPath {
  NodeId root = kNoNode;       ///< the evaluation's result root
  NodeId first_fresh = 0;      ///< arena size before the evaluation ran
  std::size_t appended = 0;    ///< nodes appended, including dead temporaries
  std::vector<NodeId> nodes;   ///< fresh nodes reachable from root, ascending
};

/// The fresh nodes (id >= \p first_fresh) reachable from \p root, ascending.
/// Old nodes are immutable and only reference older nodes, so every path
/// from \p root to a fresh node passes through fresh nodes only: the walk is
/// O(|result|), independent of the document. Ascending id order is
/// children-before-parents (ids are topological), the order a path-local
/// matrix refill consumes.
std::vector<NodeId> CollectFreshReachable(const Slp& slp, NodeId root,
                                          NodeId first_fresh);

/// Like EvalCdeOnChecked, and additionally reports the edit's dirty path.
/// On error \p dirty is reset and the arena is untouched.
Expected<NodeId> EvalCdeOnChecked(Slp* slp, const std::vector<NodeId>& roots,
                                  const CdeExpr& expr, CdeDirtyPath* dirty);

/// Like EvalCde, but treats invalid caller-supplied expressions as a
/// diagnosable error instead of aborting the process. Canonical checked
/// entry point; validates first, so the database is untouched on error.
Expected<NodeId> EvalCdeExpected(DocumentDatabase* database, const CdeExpr& expr);

/// Result of EvalCdeChecked; node is only meaningful when ok() (same
/// convention as CdeParseResult). Compat shim over EvalCdeExpected.
struct CdeEvalResult {
  NodeId node = kNoNode;
  std::string error;

  bool ok() const { return error.empty(); }
};

/// Validates \p expr against \p database -- document indices exist, every
/// position is in range for the (computed) operand lengths -- without
/// evaluating or mutating anything. Returns a diagnostic message, empty
/// when valid. O(|φ|).
std::string ValidateCde(const DocumentDatabase& database, const CdeExpr& expr);

/// Compat shim: EvalCdeExpected repackaged as a CdeEvalResult.
CdeEvalResult EvalCdeChecked(DocumentDatabase* database, const CdeExpr& expr);

/// Parses, validates, evaluates, and registers \p expression; returns the
/// new document's index, or a parse/validation error (database untouched).
Expected<std::size_t> ApplyCdeChecked(DocumentDatabase* database,
                                      std::string_view expression);

/// Convenience: parse, evaluate, and register; aborts on parse errors.
/// Returns the new document's index.
std::size_t ApplyCde(DocumentDatabase* database, std::string_view expression);

/// Reference semantics on plain strings, for differential testing.
std::string EvalCdeOnStrings(const std::vector<std::string>& documents,
                             const CdeExpr& expr);

}  // namespace spanners
