/// \file slp_enum.hpp
/// \brief Regular-spanner evaluation over SLP-compressed documents
/// (paper, Section 4.2; [39]), with incremental maintenance under CDE
/// updates (Section 4.3; [40]).
///
/// Reimplementation of the result's algorithmic core: for every SLP node A
/// the preprocessing computes, over the deterministic extended VA,
///   * spine_A : the unique marker-free run function p -> q over 𝔇(A),
///   * event_A : the relation "p -> q with at least one marker firing
///               inside A",
///   * full_A = spine_A ∪ event_A,
/// by Boolean matrix products bottom-up -- O(|S| * poly(Q)) and *cached per
/// node*, so CDE updates only pay for freshly created nodes. The
/// enumeration phase walks the virtual derivation tree but descends into a
/// child only when a marker event fires inside it (the spine function jumps
/// across event-free subtrees in O(1)), giving delay O(depth * poly(Q)) per
/// tuple: O(log |D|) in data complexity for shallow/strongly balanced SLPs,
/// independent of the achieved compression -- exactly the bound of [39].
///
/// Duplicate-freeness: the automaton is deterministic over combined letters
/// (extended_va.hpp), so accepted letter words, runs, and result tuples are
/// in bijection.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>

#include "automata/state_set.hpp"
#include "core/extended_va.hpp"
#include "slp/slp.hpp"
#include "util/bool_matrix.hpp"
#include "util/thread_pool.hpp"

namespace spanners {

/// Evaluator for one spanner over documents of one SLP arena.
class SlpSpannerEvaluator {
 public:
  /// \p edva must be deterministic and trimmed (RegularSpanner::edva()) and
  /// outlive the evaluator.
  explicit SlpSpannerEvaluator(const ExtendedVA* edva);

  /// Enumerates [[S]](𝔇(root)). The callback returns false to stop early.
  /// Returns the number of tuples emitted. Matrices for unseen nodes are
  /// computed on demand and cached (the preprocessing); repeat calls and
  /// calls after CDE updates touch only new nodes.
  std::size_t Evaluate(const Slp& slp, NodeId root,
                       const std::function<bool(const SpanTuple&)>& callback);

  /// Convenience: materialise the relation.
  SpanRelation EvaluateToRelation(const Slp& slp, NodeId root);

  /// Per-node preprocessing state (paper §4.2): the marker-free spine run
  /// function plus the event/full Boolean matrices. Public so incremental
  /// tests can compare spliced state against a fresh whole-document fill.
  struct NodeMats {
    StateSet spine;    ///< marker-free run function (kNoState = none); SSO:
                       ///< stays inline for automata of <= 8 states, one
                       ///< allocation otherwise (was one per node always)
    BoolMatrix event;  ///< runs with >= 1 marker event inside
    BoolMatrix full;   ///< spine ∪ event
  };

  // --- incremental maintenance (paper §4.3) ---------------------------------

  /// Path-local splice repair: computes matrices for exactly the fresh
  /// nodes of \p dirty (ascending id order = children before parents, the
  /// order CollectFreshReachable reports) on top of the existing cache,
  /// skipping nodes whose children are not yet cached (the lazy fill pays
  /// for those on the next evaluation). O(|dirty| * poly(Q)) -- no
  /// whole-subtree discovery walk. Returns the number of nodes computed.
  std::size_t RefillPath(const Slp& slp, const std::vector<NodeId>& dirty);

  /// Carries the cache across a compaction (CompactSlp's remap overload):
  /// the entry of old node n moves to remap[n]; unreachable nodes
  /// (remap[n] == kNoNode) are dropped. Sound because matrices depend only
  /// on the node's derived string, which compaction preserves node-for-node.
  /// No-op-with-clear if the cache is not bound to \p from_arena. Returns
  /// the number of entries retained.
  std::size_t RemapCache(uint64_t from_arena, const std::vector<NodeId>& remap,
                         uint64_t to_arena);

  /// Rebinds the cache to an arena with *identical* node ids (a thawed twin
  /// of a mapped epoch: SlpSerializer::Thaw preserves ids). Clears instead
  /// if the cache is not bound to \p from_arena.
  void RebindArena(uint64_t from_arena, uint64_t to_arena);

  /// The cached state of \p node, or nullptr (test hook; never fills).
  const NodeMats* FindMats(NodeId node) const {
    auto it = cache_.find(node);
    return it == cache_.end() ? nullptr : &it->second;
  }

  /// The arena the cache is currently bound to (0 = none yet).
  uint64_t bound_arena() const { return bound_arena_; }

  /// Nodes with cached matrices (exposed for the update-cost experiments).
  std::size_t cache_size() const { return cache_.size(); }
  void ClearCache() { cache_.clear(); }

  /// Approximate heap footprint of the per-node matrix cache: the spine run
  /// function plus the two bit-packed matrices per node, with container
  /// overhead. The unit the store's byte-budgeted prepared-state cache
  /// accounts evaluators in (src/store/prepared_cache.hpp).
  std::size_t CacheBytes() const;

  /// Steps spent between the two most recent emitted tuples (delay probe
  /// for experiment E8).
  std::size_t last_delay_steps() const { return last_delay_steps_; }

  /// Worker threads for the matrix preprocessing (>= 1; 1 = sequential).
  /// Defaults to ThreadPool::DefaultThreadCount(). The uncached sub-DAG is
  /// evaluated level by level (slp_schedule.hpp); results are identical to
  /// the sequential walk, work stays O(|S| * poly(Q)).
  void SetThreads(std::size_t num_threads);
  std::size_t threads() const { return threads_; }

 private:
  static constexpr StateId kNoState = UINT32_MAX;

  struct Context {
    const Slp* slp;
    const std::function<bool(const SpanTuple&)>* callback;
    std::vector<std::pair<uint64_t, MarkerSet>> events;  ///< (gap, markers)
    std::size_t emitted = 0;
    bool stopped = false;
    std::size_t steps = 0;
  };

  const NodeMats& MatsOf(const Slp& slp, NodeId node);

  /// Level-order fill of every uncached node reachable from \p node.
  void FillCache(const Slp& slp, NodeId node);

  /// Computes the mats of \p node into \p out; children must be cached.
  void ComputeNode(const Slp& slp, NodeId node, NodeMats* out) const;

  /// Enumerates runs p -> q over node A (with >= 1 event when need_event);
  /// invokes \p next for each completed run with its events appended to
  /// ctx->events. Returns false when stopped.
  bool EnumNode(NodeId node, StateId p, StateId q, bool need_event, uint64_t offset,
                Context* ctx, const std::function<bool()>& next);

  SpanTuple BuildTuple(const Context& ctx) const;

  const ExtendedVA* edva_;
  std::size_t num_states_;
  uint64_t bound_arena_ = 0;  ///< cache validity domain (Slp::arena_id)
  std::unordered_map<NodeId, NodeMats> cache_;
  std::size_t last_delay_steps_ = 0;
  std::size_t threads_ = ThreadPool::DefaultThreadCount();
  std::unique_ptr<ThreadPool> pool_;  ///< created lazily when threads_ > 1
};

}  // namespace spanners
