#include "slp/slp_enum.hpp"

#include <utility>

#include "slp/slp_schedule.hpp"
#include "util/common.hpp"
#include "util/metrics.hpp"
#include "util/slo.hpp"
#include "util/trace.hpp"

namespace spanners {
namespace {

/// The O(|S| * poly(Q)) preprocessing (paper §4.2) and the log-depth
/// enumeration delay (§4.2, [39]) as runtime metrics; kernel counters
/// attribute the per-node products to the configured Boolean-product kernel
/// (SPANNERS_MM_KERNEL A/B).
struct SlpEnumMetrics {
  Histogram& fill_ns;
  Histogram& level_ns;
  Counter& fill_nodes;
  Counter& fill_levels;
  Counter& kernel_blocked_nodes;
  Counter& kernel_sparse_nodes;
  Counter& cache_bytes;
  Counter& tuples;
  Histogram& delay_steps;

  static SlpEnumMetrics& Get() {
    MetricsRegistry& registry = MetricsRegistry::Global();
    static SlpEnumMetrics* metrics = new SlpEnumMetrics{
        registry.GetHistogram("slp.fill_ns"),
        registry.GetHistogram("slp.fill.level_ns"),
        registry.GetCounter("slp.fill.nodes"),
        registry.GetCounter("slp.fill.levels"),
        registry.GetCounter("slp.kernel.blocked_nodes"),
        registry.GetCounter("slp.kernel.sparse_nodes"),
        registry.GetCounter("slp.cache.bytes"),
        registry.GetCounter("slp.enum.tuples"),
        registry.GetHistogram("slp.enum.delay_steps"),
    };
    return *metrics;
  }
};

/// Attributes \p nodes products to the active kernel (read once per fill;
/// the knob is process-wide and set before preprocessing starts). kSimd
/// counts as blocked: it is the same transpose + AND-reduce structure.
void CountKernelNodes(SlpEnumMetrics& metrics, std::size_t nodes) {
  if (BoolMatrix::multiply_kernel() == BoolMatrix::MultiplyKernel::kSparseRows) {
    metrics.kernel_sparse_nodes.Add(nodes);
  } else {
    metrics.kernel_blocked_nodes.Add(nodes);
  }
}

}  // namespace

SlpSpannerEvaluator::SlpSpannerEvaluator(const ExtendedVA* edva) : edva_(edva) {
  Require(edva_ != nullptr, "SlpSpannerEvaluator: null automaton");
  Require(edva_->IsDeterministic(),
          "SlpSpannerEvaluator: automaton must be deterministic (use RegularSpanner)");
  num_states_ = edva_->num_states();
}

void SlpSpannerEvaluator::SetThreads(std::size_t num_threads) {
  const std::size_t n = num_threads == 0 ? 1 : num_threads;
  if (n != threads_) {
    threads_ = n;
    pool_.reset();
  }
}

std::size_t SlpSpannerEvaluator::CacheBytes() const {
  const std::size_t words_per_row = (num_states_ + 63) / 64;
  const std::size_t bytes_per_node = num_states_ * sizeof(StateId) +
                                     2 * num_states_ * words_per_row * 8 +
                                     sizeof(NodeMats) + 64;  // map-node overhead
  return cache_.size() * bytes_per_node;
}

void SlpSpannerEvaluator::ComputeNode(const Slp& slp, NodeId node, NodeMats* out) const {
  NodeMats& mats = *out;
  if (slp.IsTerminal(node)) {
    const uint16_t c = slp.TerminalChar(node);
    mats.spine.Assign(num_states_, kNoState);
    mats.event = BoolMatrix(num_states_);
    for (StateId p = 0; p < num_states_; ++p) {
      for (const EvaTransition& t : edva_->TransitionsFrom(p)) {
        if (t.letter.ch != c) continue;
        if (t.letter.markers == 0) {
          mats.spine[p] = t.to;  // unique: automaton is deterministic
        } else {
          mats.event.Set(p, t.to);
        }
      }
    }
  } else {
    const NodeMats& left = cache_.at(slp.Left(node));
    const NodeMats& right = cache_.at(slp.Right(node));
    // spine = right.spine ∘ left.spine
    mats.spine.Assign(num_states_, kNoState);
    for (StateId p = 0; p < num_states_; ++p) {
      const StateId mid = left.spine[p];
      if (mid != kNoState) mats.spine[p] = right.spine[mid];
    }
    // event = left.event * right.full  ∪  left.spine ; right.event
    left.event.MultiplyInto(right.full, &mats.event);
    for (StateId p = 0; p < num_states_; ++p) {
      const StateId mid = left.spine[p];
      if (mid == kNoState) continue;
      for (StateId q = 0; q < num_states_; ++q) {
        if (right.event.Get(mid, q)) mats.event.Set(p, q);
      }
    }
  }
  mats.full = mats.event;
  for (StateId p = 0; p < num_states_; ++p) {
    if (mats.spine[p] != kNoState) mats.full.Set(p, mats.spine[p]);
  }
}

void SlpSpannerEvaluator::FillCache(const Slp& slp, NodeId node) {
  ScopedSpan span("slp.fill");
  ScopedLatency fill_latency(SlpEnumMetrics::Get().fill_ns);
  const std::vector<std::vector<NodeId>> levels =
      UncachedLevels(slp, node, [&](NodeId n) { return cache_.count(n) != 0; });
  // Pre-reserve one slot per pending node: workers write into stable,
  // disjoint mapped values and never mutate the map itself -- no locking on
  // the hot path (see slp_schedule.hpp).
  std::size_t new_nodes = 0;
  for (const std::vector<NodeId>& level : levels) new_nodes += level.size();
  cache_.reserve(cache_.size() + new_nodes);
  for (const std::vector<NodeId>& level : levels) {
    for (const NodeId n : level) cache_.emplace(n, NodeMats());
  }
  // All counter recording happens here, once per fill -- the level loop
  // below carries no per-element gating, so SPANNERS_TRACE=off costs zero
  // in the kernel. Per-level timings are a spans-level profiling detail.
  if (MetricsEnabled()) {
    SlpEnumMetrics& metrics = SlpEnumMetrics::Get();
    metrics.fill_nodes.Add(new_nodes);
    metrics.fill_levels.Add(levels.size());
    CountKernelNodes(metrics, new_nodes);
    // Approximate footprint of the freshly cached NodeMats: the spine run
    // function plus the two bit-packed matrices per node.
    const std::size_t words_per_row = (num_states_ + 63) / 64;
    const std::size_t bytes_per_node =
        num_states_ * sizeof(StateId) + 2 * num_states_ * words_per_row * 8;
    metrics.cache_bytes.Add(new_nodes * bytes_per_node);
  }
  const bool time_levels = SpansEnabled();
  if (threads_ > 1 && pool_ == nullptr) pool_ = std::make_unique<ThreadPool>(threads_);
  for (const std::vector<NodeId>& level : levels) {
    const uint64_t level_start = time_levels ? NowNanos() : 0;
    auto compute = [&](std::size_t i) {
      ComputeNode(slp, level[i], &cache_.find(level[i])->second);
    };
    // ParallelFor is a barrier: level k is complete (and visible) before
    // level k+1 starts, which is exactly the dependency order.
    if (pool_ != nullptr && level.size() > 1) {
      pool_->ParallelFor(0, level.size(), compute);
    } else {
      for (std::size_t i = 0; i < level.size(); ++i) compute(i);
    }
    if (time_levels) {
      SlpEnumMetrics::Get().level_ns.Record(NowNanos() - level_start);
    }
  }
}

std::size_t SlpSpannerEvaluator::RefillPath(const Slp& slp,
                                            const std::vector<NodeId>& dirty) {
  if (bound_arena_ != slp.arena_id()) {
    // Nothing to splice into: the cache belongs to another arena. Bind and
    // let the caller's evaluation do a regular (full) fill.
    cache_.clear();
    bound_arena_ = slp.arena_id();
    return 0;
  }
  ScopedSpan span("slp.refill_path");
  std::size_t computed = 0;
  cache_.reserve(cache_.size() + dirty.size());
  for (const NodeId node : dirty) {
    if (cache_.count(node) != 0) continue;
    if (!slp.IsTerminal(node) && (cache_.count(slp.Left(node)) == 0 ||
                                  cache_.count(slp.Right(node)) == 0)) {
      // An old child was never cached (partially warm state); skip -- the
      // lazy level-order fill computes it on the next evaluation.
      continue;
    }
    ComputeNode(slp, node, &cache_[node]);
    ++computed;
  }
  if (computed > 0 && MetricsEnabled()) {
    SlpEnumMetrics& metrics = SlpEnumMetrics::Get();
    metrics.fill_nodes.Add(computed);
    CountKernelNodes(metrics, computed);
  }
  return computed;
}

std::size_t SlpSpannerEvaluator::RemapCache(uint64_t from_arena,
                                            const std::vector<NodeId>& remap,
                                            uint64_t to_arena) {
  if (bound_arena_ != from_arena) {
    cache_.clear();
    bound_arena_ = to_arena;
    return 0;
  }
  std::unordered_map<NodeId, NodeMats> moved;
  moved.reserve(cache_.size());
  for (auto& [id, mats] : cache_) {
    if (id >= remap.size() || remap[id] == kNoNode) continue;  // reclaimed
    // Hash-consing may merge structurally equal nodes; the merged entries
    // carry identical matrices, so keeping the first is enough.
    moved.emplace(remap[id], std::move(mats));
  }
  cache_ = std::move(moved);
  bound_arena_ = to_arena;
  return cache_.size();
}

void SlpSpannerEvaluator::RebindArena(uint64_t from_arena, uint64_t to_arena) {
  if (bound_arena_ != from_arena) cache_.clear();
  bound_arena_ = to_arena;
}

const SlpSpannerEvaluator::NodeMats& SlpSpannerEvaluator::MatsOf(const Slp& slp,
                                                                 NodeId node) {
  // Node ids are only meaningful within one arena; switching arenas
  // invalidates the cache (ids would silently collide otherwise).
  if (bound_arena_ != slp.arena_id()) {
    cache_.clear();
    bound_arena_ = slp.arena_id();
  }
  auto it = cache_.find(node);
  if (it != cache_.end()) return it->second;
  FillCache(slp, node);
  return cache_.at(node);
}

bool SlpSpannerEvaluator::EnumNode(NodeId node, StateId p, StateId q, bool need_event,
                                   uint64_t offset, Context* ctx,
                                   const std::function<bool()>& next) {
  ++ctx->steps;
  const Slp& slp = *ctx->slp;
  if (slp.IsTerminal(node)) {
    const uint16_t c = slp.TerminalChar(node);
    for (const EvaTransition& t : edva_->TransitionsFrom(p)) {
      if (t.letter.ch != c || t.to != q) continue;
      if (t.letter.markers == 0) {
        if (need_event) continue;
        if (!next()) return false;
      } else {
        ctx->events.push_back({offset, t.letter.markers});
        const bool keep_going = next();
        ctx->events.pop_back();
        if (!keep_going) return false;
      }
    }
    return true;
  }
  const NodeId left = slp.Left(node);
  const NodeId right = slp.Right(node);
  const uint64_t left_length = slp.Length(left);
  const NodeMats& lm = MatsOf(slp, left);
  const NodeMats& rm = MatsOf(slp, right);

  // Option 1: no event inside the left child -- jump across it via the
  // spine function (this is what makes the delay logarithmic: event-free
  // subtrees cost O(1) regardless of their derived length).
  const StateId mid = lm.spine[p];
  if (mid != kNoState) {
    const bool viable = need_event ? rm.event.Get(mid, q) : rm.full.Get(mid, q);
    if (viable) {
      if (!EnumNode(right, mid, q, need_event, offset + left_length, ctx, next)) {
        return false;
      }
    }
  }
  // Option 2: at least one event inside the left child; the right part is
  // then unconstrained. Runs decompose uniquely at the child boundary, so
  // options 1 and 2 are disjoint and enumeration is duplicate-free.
  for (StateId r = 0; r < num_states_; ++r) {
    if (!lm.event.Get(p, r) || !rm.full.Get(r, q)) continue;
    auto continue_right = [&]() {
      return EnumNode(right, r, q, false, offset + left_length, ctx, next);
    };
    if (!EnumNode(left, p, r, true, offset, ctx, continue_right)) return false;
  }
  return true;
}

SpanTuple SlpSpannerEvaluator::BuildTuple(const Context& ctx) const {
  const std::size_t num_vars = edva_->variables().size();
  SpanTuple tuple(num_vars);
  std::vector<Position> open_at(num_vars, 0);
  for (const auto& [gap, markers] : ctx.events) {
    const Position here = static_cast<Position>(gap + 1);
    for (VariableId v = 0; v < num_vars; ++v) {
      if (markers & OpenMarker(v)) open_at[v] = here;
      if (markers & CloseMarker(v)) tuple[v] = Span(open_at[v], here);
    }
  }
  return tuple;
}

std::size_t SlpSpannerEvaluator::Evaluate(
    const Slp& slp, NodeId root, const std::function<bool(const SpanTuple&)>& callback) {
  Context ctx;
  ctx.slp = &slp;
  ctx.callback = &callback;
  std::size_t steps_at_last_emit = 0;
  // Gate + handle resolved once per Evaluate, not once per tuple: emit is
  // per-element (runs between every two results), so it must carry no
  // registry lookups and, at SPANNERS_TRACE=off, no recording at all.
  const bool metrics_on = MetricsEnabled();
  SlpEnumMetrics* metrics = metrics_on ? &SlpEnumMetrics::Get() : nullptr;

  auto emit = [&](MarkerSet end_markers, uint64_t end_gap) {
    if (end_markers != 0) ctx.events.push_back({end_gap, end_markers});
    const SpanTuple tuple = BuildTuple(ctx);
    if (end_markers != 0) ctx.events.pop_back();
    ++ctx.emitted;
    last_delay_steps_ = ctx.steps - steps_at_last_emit;
    steps_at_last_emit = ctx.steps;
    // Delay profiler for the compressed path: steps between consecutive
    // tuples, expected O(depth * poly(Q)) -- flat in |D| for balanced SLPs.
    if (metrics != nullptr) {
      metrics->delay_steps.Record(last_delay_steps_);
      CheckDelaySlo(last_delay_steps_);
    }
    if (!callback(tuple)) {
      ctx.stopped = true;
      return false;
    }
    return true;
  };

  if (num_states_ == 0) return 0;
  const StateId initial = edva_->initial();

  if (root == kNoNode) {
    // Empty document: only the End letter.
    for (const EvaTransition& t : edva_->TransitionsFrom(initial)) {
      if (t.letter.ch == kEndMark && edva_->IsAccepting(t.to)) {
        if (!emit(t.letter.markers, 0)) break;
      }
    }
    if (metrics != nullptr) metrics->tuples.Add(ctx.emitted);
    return ctx.emitted;
  }

  const uint64_t n = slp.Length(root);
  const NodeMats& root_mats = MatsOf(slp, root);
  for (StateId q = 0; q < num_states_ && !ctx.stopped; ++q) {
    if (!root_mats.full.Get(initial, q)) continue;
    for (const EvaTransition& t : edva_->TransitionsFrom(q)) {
      if (t.letter.ch != kEndMark || !edva_->IsAccepting(t.to)) continue;
      auto finish = [&]() { return emit(t.letter.markers, n); };
      if (!EnumNode(root, initial, q, false, 0, &ctx, finish)) break;
    }
  }
  // Tuple count flushed once per evaluation (hoisted out of the per-tuple
  // emit path).
  if (metrics != nullptr) metrics->tuples.Add(ctx.emitted);
  return ctx.emitted;
}

SpanRelation SlpSpannerEvaluator::EvaluateToRelation(const Slp& slp, NodeId root) {
  SpanRelation relation;
  Evaluate(slp, root, [&](const SpanTuple& tuple) {
    relation.insert(tuple);
    return true;
  });
  return relation;
}

}  // namespace spanners
