#include "util/trace.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>

namespace spanners {

namespace {

thread_local void* t_buffer = nullptr;  ///< this thread's ThreadBuffer (global tracer)

}  // namespace

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();  // never destroyed (threads may outlive main)
  return *tracer;
}

Tracer::ThreadBuffer& Tracer::BufferForThisThread() {
  if (t_buffer != nullptr) return *static_cast<ThreadBuffer*>(t_buffer);
  std::lock_guard<std::mutex> lock(mutex_);
  buffers_.push_back(std::make_unique<ThreadBuffer>());
  buffers_.back()->tid = static_cast<uint32_t>(buffers_.size());
  t_buffer = buffers_.back().get();
  return *buffers_.back();
}

void Tracer::RecordSpan(const char* name, uint64_t start_ns, uint64_t end_ns) {
  ThreadBuffer& buffer = BufferForThisThread();
  std::lock_guard<std::mutex> lock(buffer.mutex);
  buffer.spans.push_back({name, start_ns, end_ns - start_ns});
}

std::string Tracer::ChromeTraceJson() const {
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const std::unique_ptr<ThreadBuffer>& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    for (const Span& span : buffer->spans) {
      if (!first) os << ",";
      first = false;
      // Complete events; ts/dur are microseconds. Spans on one tid nest by
      // containment, which is how the viewers draw the plan->prepare->
      // evaluate hierarchy.
      os << "{\"name\":\"" << span.name << "\",\"cat\":\"spanners\",\"ph\":\"X\""
         << ",\"pid\":1,\"tid\":" << buffer->tid
         << ",\"ts\":" << static_cast<double>(span.start_ns - origin_ns_) / 1000.0
         << ",\"dur\":" << static_cast<double>(span.dur_ns) / 1000.0 << "}";
    }
  }
  os << "]}";
  return os.str();
}

std::string Tracer::TextReport() const {
  struct Aggregate {
    uint64_t count = 0;
    uint64_t total_ns = 0;
    uint64_t max_ns = 0;
  };
  std::map<std::string, Aggregate> by_name;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const std::unique_ptr<ThreadBuffer>& buffer : buffers_) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
      for (const Span& span : buffer->spans) {
        Aggregate& aggregate = by_name[span.name];
        ++aggregate.count;
        aggregate.total_ns += span.dur_ns;
        aggregate.max_ns = std::max(aggregate.max_ns, span.dur_ns);
      }
    }
  }
  std::ostringstream os;
  for (const auto& [name, aggregate] : by_name) {
    os << "span " << name << " count=" << aggregate.count
       << " total_ns=" << aggregate.total_ns
       << " mean_ns=" << aggregate.total_ns / aggregate.count
       << " max_ns=" << aggregate.max_ns << "\n";
  }
  return os.str();
}

Status Tracer::WriteChromeTrace(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Error("Tracer: cannot open \"" + path + "\" for writing");
  out << ChromeTraceJson();
  out.flush();
  if (!out) return Status::Error("Tracer: write to \"" + path + "\" failed");
  return Status::Ok();
}

std::size_t Tracer::span_count() const {
  std::size_t total = 0;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const std::unique_ptr<ThreadBuffer>& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    total += buffer->spans.size();
  }
  return total;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const std::unique_ptr<ThreadBuffer>& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    buffer->spans.clear();
  }
}

}  // namespace spanners
