/// \file metrics_export.hpp
/// \brief OpenMetrics / Prometheus text exposition of a MetricsSnapshot
/// (DESIGN.md §1.14).
///
/// The registry's own ToString() is a stable internal report; this module
/// renders the same snapshot in the OpenMetrics text format so any
/// Prometheus-compatible scraper can consume a serving session's telemetry:
///
///   # TYPE spanners_store_commits counter
///   spanners_store_commits_total 42
///   # TYPE spanners_wal_append_ns histogram
///   spanners_wal_append_ns_bucket{le="8191"} 17
///   ...
///   spanners_wal_append_ns_bucket{le="+Inf"} 42
///   spanners_wal_append_ns_sum 1234567
///   spanners_wal_append_ns_count 42
///   # EOF
///
/// Internal metric names use dots ("store.commits"); OpenMetrics names allow
/// only [a-zA-Z0-9_:], so names are sanitized (dots and dashes become
/// underscores) and prefixed "spanners_". The log2 histograms map naturally
/// onto cumulative le-buckets: bucket b's inclusive upper bound 2^b - 1
/// becomes its le value, and only non-empty buckets are emitted (65 buckets
/// per histogram would be mostly zeros).
///
/// SnapshotDelta() turns two cumulative snapshots into a per-window view
/// (counters subtracted, histograms via HistogramStats::Since), and
/// MetricsFileFlusher rewrites a --metrics-out file atomically on an
/// interval -- the file is always a complete, valid exposition (scrapers
/// never observe a partial write because the rewrite is tmp + rename).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>

#include "util/metrics.hpp"

namespace spanners {

/// \p name with every character outside [a-zA-Z0-9_:] replaced by '_' (a
/// leading digit gets a '_' prefix). "wal.append_ns" -> "wal_append_ns".
std::string SanitizeMetricName(std::string_view name);

/// \p value with backslash, double-quote, and newline escaped per the
/// OpenMetrics ABNF for label values.
std::string EscapeLabelValue(std::string_view value);

/// Renders \p snapshot as a complete OpenMetrics text exposition, ending in
/// "# EOF\n". Metric names are sanitized and prefixed "spanners_"; counters
/// are suffixed "_total"; histograms emit cumulative non-empty _bucket
/// series plus le="+Inf", _sum, and _count.
std::string RenderOpenMetrics(const MetricsSnapshot& snapshot);

/// The per-window view \p current minus \p earlier: counters subtract
/// (clamped at 0 in case a snapshot raced a sharded add), gauges carry the
/// current value (a gauge has no meaningful delta), histograms use
/// HistogramStats::Since. Metrics absent from \p earlier are taken whole.
MetricsSnapshot SnapshotDelta(const MetricsSnapshot& current,
                              const MetricsSnapshot& earlier);

/// Atomically replaces the file at \p path with \p contents (write to
/// "<path>.tmp", fsync, rename). Returns false on any I/O failure.
bool WriteMetricsFile(const std::string& path, const std::string& contents);

/// Background thread that renders MetricsRegistry::Global() to \p path every
/// \p interval, and once more on destruction so the final state is never
/// lost. Flush() forces an immediate rewrite (used at clean shutdown and in
/// tests).
class MetricsFileFlusher {
 public:
  MetricsFileFlusher(std::string path, std::chrono::milliseconds interval);
  ~MetricsFileFlusher();

  MetricsFileFlusher(const MetricsFileFlusher&) = delete;
  MetricsFileFlusher& operator=(const MetricsFileFlusher&) = delete;

  /// Renders and writes now, regardless of the interval. Returns false if
  /// the write failed.
  bool Flush();

  const std::string& path() const { return path_; }

 private:
  void Run();

  std::string path_;
  std::chrono::milliseconds interval_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace spanners
