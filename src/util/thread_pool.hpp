/// \file thread_pool.hpp
/// \brief Minimal fixed-size worker pool with a ParallelFor primitive.
///
/// Built for the level-order SLP matrix preprocessing (slp_nfa.hpp,
/// slp_enum.hpp): each topological level of the uncached sub-DAG is an
/// independent batch of Boolean-matrix products, dispatched here as one
/// ParallelFor over the level's node indices. No external dependencies --
/// plain std::thread workers parked on a condition variable.
///
/// Concurrency contract: one ParallelFor runs at a time (calls are
/// serialised internally); the callback must be safe to invoke concurrently
/// for distinct indices. ParallelFor returns only after every index has been
/// processed, and the completed work happens-before the return (so a
/// subsequent ParallelFor may freely read what the previous one wrote).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace spanners {

/// A fixed set of worker threads executing ParallelFor batches.
class ThreadPool {
 public:
  /// Spawns max(num_threads, 1) - 1 workers (the calling thread participates
  /// in every batch, so num_threads == 1 means "no extra threads").
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads participating in a batch (workers + the caller).
  std::size_t num_threads() const { return workers_.size() + 1; }

  /// Invokes fn(i) once for every i in [begin, end), distributing indices
  /// over all threads in contiguous chunks; blocks until every call
  /// returned. Runs inline when the range is small or the pool has no
  /// workers.
  void ParallelFor(std::size_t begin, std::size_t end,
                   const std::function<void(std::size_t)>& fn);

  /// ParallelFor with an explicit claim-chunk size. chunk == 1 gives pure
  /// work stealing -- each thread claims the next single index when it
  /// finishes its current one -- which callers with wildly uneven per-index
  /// costs (DocumentStore::QueryAll over mixed-size documents) combine with
  /// a longest-first index order so one huge item cannot serialize the
  /// tail behind a prefix chunk.
  void ParallelForChunked(std::size_t begin, std::size_t end, std::size_t chunk,
                          const std::function<void(std::size_t)>& fn);

  /// Worker count requested by the environment: SPANNERS_THREADS when set
  /// to a positive integer, else std::thread::hardware_concurrency()
  /// (at least 1). Resolved once per process and cached (cheap to call on
  /// construction paths).
  static std::size_t DefaultThreadCount();

 private:
  struct Batch {
    std::size_t begin = 0;
    std::size_t end = 0;
    std::size_t chunk = 1;
    const std::function<void(std::size_t)>* fn = nullptr;
  };

  void WorkerLoop();
  void RunBatch();

  std::vector<std::thread> workers_;
  std::mutex mutex_;                 ///< guards batch_, generation_, pending_
  std::condition_variable wake_;     ///< workers wait for a new generation
  std::condition_variable done_;     ///< caller waits for pending_ == 0
  Batch batch_;
  std::uint64_t generation_ = 0;     ///< bumped per ParallelFor
  std::size_t next_index_ = 0;       ///< next unclaimed chunk start
  std::size_t pending_ = 0;          ///< workers still inside RunBatch
  bool stop_ = false;
  std::mutex serialize_;             ///< one ParallelFor at a time
};

}  // namespace spanners
