/// \file trace.hpp
/// \brief Scoped-span tracing with Chrome trace-event export (DESIGN.md §1.9).
///
/// A span is one timed, named interval on one thread: plan -> prepare ->
/// evaluate nest naturally because inner spans close before outer ones.
/// Capture is gated on SPANNERS_TRACE=spans (util/metrics.hpp): below that
/// level a ScopedSpan costs a single relaxed load + branch and records
/// nothing, so spans can stay in the hottest engine paths permanently.
///
/// Recording appends to a per-thread buffer (one uncontended mutex per
/// thread, taken only while spans are enabled); the global tracer mutex is
/// touched once per thread, at buffer registration. Export formats:
///
///  * ChromeTraceJson(): the Chrome trace-event format -- load the file in
///    chrome://tracing or https://ui.perfetto.dev to see the nested spans
///    per thread on a timeline ("ph":"X" complete events).
///  * TextReport(): spans aggregated by name (count, total, mean, max) for
///    terminal inspection (--stats in the examples).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/common.hpp"
#include "util/metrics.hpp"

namespace spanners {

/// The process-wide span sink.
class Tracer {
 public:
  static Tracer& Global();

  Tracer() : origin_ns_(NowNanos()) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Appends one completed span for the calling thread. \p name must be a
  /// string literal (stored by pointer, never copied).
  void RecordSpan(const char* name, uint64_t start_ns, uint64_t end_ns);

  /// All recorded spans in the Chrome trace-event JSON format
  /// (chrome://tracing / Perfetto loadable).
  std::string ChromeTraceJson() const;

  /// Spans aggregated by name, one line each (stable format):
  ///   span <name> count=<n> total_ns=<t> mean_ns=<m> max_ns=<x>
  std::string TextReport() const;

  /// Writes ChromeTraceJson() to \p path; I/O failures are reported, never
  /// fatal.
  Status WriteChromeTrace(const std::string& path) const;

  /// Number of spans recorded so far (tests).
  std::size_t span_count() const;

  /// Drops all recorded spans (buffers stay registered to their threads).
  void Clear();

 private:
  struct Span {
    const char* name;
    uint64_t start_ns;
    uint64_t dur_ns;
  };

  struct ThreadBuffer {
    std::mutex mutex;  ///< uncontended: only its thread appends
    std::vector<Span> spans;
    uint32_t tid = 0;  ///< small sequential id for trace display
  };

  ThreadBuffer& BufferForThisThread();

  const uint64_t origin_ns_;  ///< timestamps are exported relative to this
  mutable std::mutex mutex_;  ///< guards buffers_ (registration + export)
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

/// RAII span: times its own scope when SpansEnabled() at construction, else
/// a no-op. \p name must be a string literal.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name)
      : name_(SpansEnabled() ? name : nullptr),
        start_ns_(name_ != nullptr ? NowNanos() : 0) {}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    if (name_ != nullptr) Tracer::Global().RecordSpan(name_, start_ns_, NowNanos());
  }

 private:
  const char* name_;
  uint64_t start_ns_;
};

}  // namespace spanners
