#include "util/bool_matrix.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "util/common.hpp"

namespace spanners {

namespace {

BoolMatrix::MultiplyKernel InitialKernel() {
  if (const char* env = std::getenv("SPANNERS_MM_KERNEL")) {
    if (std::strcmp(env, "sparse") == 0) return BoolMatrix::MultiplyKernel::kSparseRows;
  }
  return BoolMatrix::MultiplyKernel::kBlocked;
}

BoolMatrix::MultiplyKernel g_multiply_kernel = InitialKernel();

/// Output rows/columns are processed in square-ish blocks so that the active
/// left rows plus the active transposed right rows stay within L1 (the
/// transposed rows are re-read once per row block).
constexpr std::size_t kL1BlockBytes = 16 * 1024;

}  // namespace

void BoolMatrix::SetMultiplyKernel(MultiplyKernel kernel) { g_multiply_kernel = kernel; }

BoolMatrix::MultiplyKernel BoolMatrix::multiply_kernel() { return g_multiply_kernel; }

BoolMatrix BoolMatrix::Identity(std::size_t n) {
  BoolMatrix m(n);
  for (std::size_t i = 0; i < n; ++i) m.Set(i, i);
  return m;
}

BoolMatrix BoolMatrix::Transposed() const {
  BoolMatrix result;
  TransposeInto(&result);
  return result;
}

void BoolMatrix::TransposeInto(BoolMatrix* result) const {
  if (result->size_ != size_) *result = BoolMatrix(size_);
  uint64_t* out = result->bits_.data();
  std::memset(out, 0, result->bits_.size() * sizeof(uint64_t));
  for (std::size_t p = 0; p < size_; ++p) {
    const uint64_t* row = &bits_[p * words_per_row_];
    const std::size_t p_word = p >> 6;
    const uint64_t p_mask = uint64_t{1} << (p & 63);
    for (std::size_t w = 0; w < words_per_row_; ++w) {
      uint64_t bits = row[w];
      while (bits != 0) {
        const std::size_t q = (w << 6) + static_cast<std::size_t>(__builtin_ctzll(bits));
        bits &= bits - 1;
        out[q * words_per_row_ + p_word] |= p_mask;
      }
    }
  }
}

BoolMatrix BoolMatrix::Multiply(const BoolMatrix& other) const {
  BoolMatrix result;
  MultiplyInto(other, &result);
  return result;
}

void BoolMatrix::MultiplyInto(const BoolMatrix& other, BoolMatrix* result) const {
  Require(size_ == other.size_, "BoolMatrix::Multiply: dimension mismatch");
  Require(result != this && result != &other, "BoolMatrix::MultiplyInto: aliasing");
  if (g_multiply_kernel == MultiplyKernel::kSparseRows) {
    MultiplySparseInto(other, result);
    return;
  }
  // Density cutoff: the sparse-rows loop costs ~CountOnes(this) row-ORs of
  // words_per_row_ words each, while the blocked kernel scans at least one
  // word for each of the size_^2 output bits (plus the transpose). For the
  // sparse transition matrices of small NFAs the sparse loop wins outright;
  // only hand dense products to the transpose + AND-reduce kernel.
  if (CountOnes() * words_per_row_ < size_ * size_ / 2) {
    MultiplySparseInto(other, result);
    return;
  }
  // Per-thread scratch: reuses the transpose allocation across the millions
  // of products of an SLP preprocessing pass.
  static thread_local BoolMatrix transposed;
  other.TransposeInto(&transposed);
  MultiplyTransposedInto(transposed, result);
}

std::size_t BoolMatrix::CountOnes() const {
  std::size_t ones = 0;
  for (const uint64_t word : bits_) ones += static_cast<std::size_t>(__builtin_popcountll(word));
  return ones;
}

void BoolMatrix::MultiplyTransposedInto(const BoolMatrix& other_transposed,
                                        BoolMatrix* result) const {
  Require(size_ == other_transposed.size_,
          "BoolMatrix::MultiplyTransposedInto: dimension mismatch");
  Require(result != this && result != &other_transposed,
          "BoolMatrix::MultiplyTransposedInto: aliasing");
  if (result->size_ != size_) *result = BoolMatrix(size_);
  uint64_t* out = result->bits_.data();
  std::memset(out, 0, result->bits_.size() * sizeof(uint64_t));
  const std::size_t row_bytes = words_per_row_ * sizeof(uint64_t);
  // Square-ish blocking: a block of left rows and a block of transposed
  // right rows together fit in kL1BlockBytes, so the inner AND-reduce
  // streams L1-resident data only.
  const std::size_t block = row_bytes == 0
                                ? size_
                                : std::max<std::size_t>(1, kL1BlockBytes / (2 * row_bytes));
  for (std::size_t p0 = 0; p0 < size_; p0 += block) {
    const std::size_t p1 = std::min(size_, p0 + block);
    for (std::size_t q0 = 0; q0 < size_; q0 += block) {
      const std::size_t q1 = std::min(size_, q0 + block);
      for (std::size_t p = p0; p < p1; ++p) {
        const uint64_t* row = &bits_[p * words_per_row_];
        uint64_t* out_row = &out[p * words_per_row_];
        for (std::size_t q = q0; q < q1; ++q) {
          const uint64_t* col = &other_transposed.bits_[q * words_per_row_];
          uint64_t any = 0;
          for (std::size_t w = 0; w < words_per_row_ && any == 0; ++w) {
            any = row[w] & col[w];
          }
          if (any != 0) out_row[q >> 6] |= uint64_t{1} << (q & 63);
        }
      }
    }
  }
}

void BoolMatrix::MultiplySparseInto(const BoolMatrix& other, BoolMatrix* result) const {
  if (result->size_ != size_) *result = BoolMatrix(size_);
  uint64_t* out_bits = result->bits_.data();
  std::memset(out_bits, 0, result->bits_.size() * sizeof(uint64_t));
  for (std::size_t p = 0; p < size_; ++p) {
    uint64_t* out = &out_bits[p * words_per_row_];
    const uint64_t* row = &bits_[p * words_per_row_];
    for (std::size_t wr = 0; wr < words_per_row_; ++wr) {
      uint64_t bitsofrow = row[wr];
      while (bitsofrow != 0) {
        const std::size_t r = (wr << 6) + static_cast<std::size_t>(__builtin_ctzll(bitsofrow));
        bitsofrow &= bitsofrow - 1;
        const uint64_t* other_row = &other.bits_[r * words_per_row_];
        for (std::size_t w = 0; w < words_per_row_; ++w) out[w] |= other_row[w];
      }
    }
  }
}

BoolMatrix BoolMatrix::Or(const BoolMatrix& other) const {
  Require(size_ == other.size_, "BoolMatrix::Or: dimension mismatch");
  BoolMatrix result = *this;
  for (std::size_t i = 0; i < bits_.size(); ++i) result.bits_[i] |= other.bits_[i];
  return result;
}

bool BoolMatrix::RowAny(std::size_t row) const {
  for (std::size_t w = 0; w < words_per_row_; ++w) {
    if (bits_[row * words_per_row_ + w] != 0) return true;
  }
  return false;
}

BoolMatrix BoolMatrix::Closure() const {
  BoolMatrix result = Or(Identity(size_));
  // Warshall with bit-packed row updates: if result[p][r] then
  // row(p) |= row(r).
  for (std::size_t r = 0; r < size_; ++r) {
    const uint64_t* row_r = &result.bits_[r * words_per_row_];
    for (std::size_t p = 0; p < size_; ++p) {
      if (!result.Get(p, r)) continue;
      uint64_t* row_p = &result.bits_[p * words_per_row_];
      for (std::size_t w = 0; w < words_per_row_; ++w) row_p[w] |= row_r[w];
    }
  }
  return result;
}

std::vector<uint64_t> BoolMatrix::VecMultiply(const std::vector<uint64_t>& vec) const {
  Require(vec.size() == words_per_row_, "BoolMatrix::VecMultiply: dimension mismatch");
  std::vector<uint64_t> result(words_per_row_, 0);
  for (std::size_t wr = 0; wr < words_per_row_; ++wr) {
    uint64_t bits = vec[wr];
    while (bits != 0) {
      const std::size_t p = (wr << 6) + static_cast<std::size_t>(__builtin_ctzll(bits));
      bits &= bits - 1;
      const uint64_t* row = &bits_[p * words_per_row_];
      for (std::size_t w = 0; w < words_per_row_; ++w) result[w] |= row[w];
    }
  }
  return result;
}

std::string BoolMatrix::ToString() const {
  std::string out;
  out.reserve(size_ * (size_ + 1));
  for (std::size_t p = 0; p < size_; ++p) {
    for (std::size_t q = 0; q < size_; ++q) out.push_back(Get(p, q) ? '1' : '0');
    out.push_back('\n');
  }
  return out;
}

}  // namespace spanners
