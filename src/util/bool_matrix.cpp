#include "util/bool_matrix.hpp"

#include "util/common.hpp"

namespace spanners {

BoolMatrix BoolMatrix::Identity(std::size_t n) {
  BoolMatrix m(n);
  for (std::size_t i = 0; i < n; ++i) m.Set(i, i);
  return m;
}

BoolMatrix BoolMatrix::Multiply(const BoolMatrix& other) const {
  Require(size_ == other.size_, "BoolMatrix::Multiply: dimension mismatch");
  BoolMatrix result(size_);
  for (std::size_t p = 0; p < size_; ++p) {
    uint64_t* out = &result.bits_[p * words_per_row_];
    const uint64_t* row = &bits_[p * words_per_row_];
    for (std::size_t wr = 0; wr < words_per_row_; ++wr) {
      uint64_t bitsofrow = row[wr];
      while (bitsofrow != 0) {
        const std::size_t r = (wr << 6) + static_cast<std::size_t>(__builtin_ctzll(bitsofrow));
        bitsofrow &= bitsofrow - 1;
        const uint64_t* other_row = &other.bits_[r * words_per_row_];
        for (std::size_t w = 0; w < words_per_row_; ++w) out[w] |= other_row[w];
      }
    }
  }
  return result;
}

BoolMatrix BoolMatrix::Or(const BoolMatrix& other) const {
  Require(size_ == other.size_, "BoolMatrix::Or: dimension mismatch");
  BoolMatrix result = *this;
  for (std::size_t i = 0; i < bits_.size(); ++i) result.bits_[i] |= other.bits_[i];
  return result;
}

bool BoolMatrix::RowAny(std::size_t row) const {
  for (std::size_t w = 0; w < words_per_row_; ++w) {
    if (bits_[row * words_per_row_ + w] != 0) return true;
  }
  return false;
}

BoolMatrix BoolMatrix::Closure() const {
  BoolMatrix result = Or(Identity(size_));
  // Warshall with bit-packed row updates: if result[p][r] then
  // row(p) |= row(r).
  for (std::size_t r = 0; r < size_; ++r) {
    const uint64_t* row_r = &result.bits_[r * words_per_row_];
    for (std::size_t p = 0; p < size_; ++p) {
      if (!result.Get(p, r)) continue;
      uint64_t* row_p = &result.bits_[p * words_per_row_];
      for (std::size_t w = 0; w < words_per_row_; ++w) row_p[w] |= row_r[w];
    }
  }
  return result;
}

std::vector<uint64_t> BoolMatrix::VecMultiply(const std::vector<uint64_t>& vec) const {
  Require(vec.size() == words_per_row_, "BoolMatrix::VecMultiply: dimension mismatch");
  std::vector<uint64_t> result(words_per_row_, 0);
  for (std::size_t wr = 0; wr < words_per_row_; ++wr) {
    uint64_t bits = vec[wr];
    while (bits != 0) {
      const std::size_t p = (wr << 6) + static_cast<std::size_t>(__builtin_ctzll(bits));
      bits &= bits - 1;
      const uint64_t* row = &bits_[p * words_per_row_];
      for (std::size_t w = 0; w < words_per_row_; ++w) result[w] |= row[w];
    }
  }
  return result;
}

std::string BoolMatrix::ToString() const {
  std::string out;
  out.reserve(size_ * (size_ + 1));
  for (std::size_t p = 0; p < size_; ++p) {
    for (std::size_t q = 0; q < size_; ++q) out.push_back(Get(p, q) ? '1' : '0');
    out.push_back('\n');
  }
  return out;
}

}  // namespace spanners
