#include "util/bool_matrix.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "util/common.hpp"

#if defined(__x86_64__) || defined(__i386__)
#define SPANNERS_SIMD_X86 1
#include <immintrin.h>
#elif defined(__aarch64__)
#define SPANNERS_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace spanners {

namespace {

BoolMatrix::MultiplyKernel InitialKernel() {
  if (const char* env = std::getenv("SPANNERS_MM_KERNEL")) {
    if (std::strcmp(env, "sparse") == 0) return BoolMatrix::MultiplyKernel::kSparseRows;
    if (std::strcmp(env, "blocked") == 0) return BoolMatrix::MultiplyKernel::kBlocked;
    if (std::strcmp(env, "simd") == 0) return BoolMatrix::MultiplyKernel::kSimd;
  }
  return BoolMatrix::MultiplyKernel::kSimd;
}

BoolMatrix::MultiplyKernel g_multiply_kernel = InitialKernel();

/// Output rows/columns are processed in square-ish blocks so that the active
/// left rows plus the active transposed right rows stay within L1 (the
/// transposed rows are re-read once per row block).
constexpr std::size_t kL1BlockBytes = 16 * 1024;

// --- blocked product kernels ------------------------------------------------
//
// All variants compute out[p][q] = OR_w (a_row_p[w] & bt_row_q[w]) over the
// same p/q blocking; they differ only in how the per-output-bit AND-reduce
// over words_per_row words is evaluated. Results are bit-identical (the
// equivalence sweep in tests/ enforces this), so the dispatcher is free to
// pick per machine. None of them touches metrics or trace gates.

/// Scalar reduce with early exit on the first hit word (the original
/// kBlocked kernel).
void BlockedProductScalar(const uint64_t* a, const uint64_t* bt, uint64_t* out,
                          std::size_t n, std::size_t wpr, std::size_t block) {
  for (std::size_t p0 = 0; p0 < n; p0 += block) {
    const std::size_t p1 = std::min(n, p0 + block);
    for (std::size_t q0 = 0; q0 < n; q0 += block) {
      const std::size_t q1 = std::min(n, q0 + block);
      for (std::size_t p = p0; p < p1; ++p) {
        const uint64_t* row = a + p * wpr;
        uint64_t* out_row = out + p * wpr;
        for (std::size_t q = q0; q < q1; ++q) {
          const uint64_t* col = bt + q * wpr;
          uint64_t any = 0;
          for (std::size_t w = 0; w < wpr && any == 0; ++w) {
            any = row[w] & col[w];
          }
          if (any != 0) out_row[q >> 6] |= uint64_t{1} << (q & 63);
        }
      }
    }
  }
}

/// Portable unrolled reduce: four independent accumulators, no per-word
/// branch -- what the compiler auto-vectorizes when no ISA extension is
/// available at runtime.
void BlockedProductUnrolled(const uint64_t* a, const uint64_t* bt, uint64_t* out,
                            std::size_t n, std::size_t wpr, std::size_t block) {
  for (std::size_t p0 = 0; p0 < n; p0 += block) {
    const std::size_t p1 = std::min(n, p0 + block);
    for (std::size_t q0 = 0; q0 < n; q0 += block) {
      const std::size_t q1 = std::min(n, q0 + block);
      for (std::size_t p = p0; p < p1; ++p) {
        const uint64_t* row = a + p * wpr;
        uint64_t* out_row = out + p * wpr;
        for (std::size_t q = q0; q < q1; ++q) {
          const uint64_t* col = bt + q * wpr;
          uint64_t acc0 = 0, acc1 = 0, acc2 = 0, acc3 = 0;
          std::size_t w = 0;
          for (; w + 4 <= wpr; w += 4) {
            acc0 |= row[w] & col[w];
            acc1 |= row[w + 1] & col[w + 1];
            acc2 |= row[w + 2] & col[w + 2];
            acc3 |= row[w + 3] & col[w + 3];
          }
          for (; w < wpr; ++w) acc0 |= row[w] & col[w];
          if ((acc0 | acc1 | acc2 | acc3) != 0) {
            out_row[q >> 6] |= uint64_t{1} << (q & 63);
          }
        }
      }
    }
  }
}

#if defined(SPANNERS_SIMD_X86)
/// AVX2 reduce: 256-bit AND+OR accumulation (4 words per step), one VPTEST
/// per output bit. Compiled with a per-function target attribute so the
/// translation unit itself needs no -mavx2; only runs after
/// __builtin_cpu_supports("avx2") says yes.
__attribute__((target("avx2"))) void BlockedProductAvx2(const uint64_t* a,
                                                        const uint64_t* bt,
                                                        uint64_t* out, std::size_t n,
                                                        std::size_t wpr,
                                                        std::size_t block) {
  for (std::size_t p0 = 0; p0 < n; p0 += block) {
    const std::size_t p1 = std::min(n, p0 + block);
    for (std::size_t q0 = 0; q0 < n; q0 += block) {
      const std::size_t q1 = std::min(n, q0 + block);
      for (std::size_t p = p0; p < p1; ++p) {
        const uint64_t* row = a + p * wpr;
        uint64_t* out_row = out + p * wpr;
        for (std::size_t q = q0; q < q1; ++q) {
          const uint64_t* col = bt + q * wpr;
          __m256i acc = _mm256_setzero_si256();
          std::size_t w = 0;
          for (; w + 4 <= wpr; w += 4) {
            const __m256i va =
                _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + w));
            const __m256i vb =
                _mm256_loadu_si256(reinterpret_cast<const __m256i*>(col + w));
            acc = _mm256_or_si256(acc, _mm256_and_si256(va, vb));
          }
          uint64_t any = static_cast<uint64_t>(_mm256_testz_si256(acc, acc) == 0);
          for (; w < wpr; ++w) any |= row[w] & col[w];
          if (any != 0) out_row[q >> 6] |= uint64_t{1} << (q & 63);
        }
      }
    }
  }
}
#endif  // SPANNERS_SIMD_X86

#if defined(SPANNERS_SIMD_NEON)
/// NEON reduce: two 128-bit accumulators (4 words per step). NEON is
/// baseline on aarch64, so no runtime check is needed.
void BlockedProductNeon(const uint64_t* a, const uint64_t* bt, uint64_t* out,
                        std::size_t n, std::size_t wpr, std::size_t block) {
  for (std::size_t p0 = 0; p0 < n; p0 += block) {
    const std::size_t p1 = std::min(n, p0 + block);
    for (std::size_t q0 = 0; q0 < n; q0 += block) {
      const std::size_t q1 = std::min(n, q0 + block);
      for (std::size_t p = p0; p < p1; ++p) {
        const uint64_t* row = a + p * wpr;
        uint64_t* out_row = out + p * wpr;
        for (std::size_t q = q0; q < q1; ++q) {
          const uint64_t* col = bt + q * wpr;
          uint64x2_t acc0 = vdupq_n_u64(0);
          uint64x2_t acc1 = vdupq_n_u64(0);
          std::size_t w = 0;
          for (; w + 4 <= wpr; w += 4) {
            acc0 = vorrq_u64(acc0, vandq_u64(vld1q_u64(row + w), vld1q_u64(col + w)));
            acc1 = vorrq_u64(acc1,
                             vandq_u64(vld1q_u64(row + w + 2), vld1q_u64(col + w + 2)));
          }
          const uint64x2_t both = vorrq_u64(acc0, acc1);
          uint64_t any = vgetq_lane_u64(both, 0) | vgetq_lane_u64(both, 1);
          for (; w < wpr; ++w) any |= row[w] & col[w];
          if (any != 0) out_row[q >> 6] |= uint64_t{1} << (q & 63);
        }
      }
    }
  }
}
#endif  // SPANNERS_SIMD_NEON

using BlockedProductFn = void (*)(const uint64_t*, const uint64_t*, uint64_t*,
                                  std::size_t, std::size_t, std::size_t);

struct SimdDispatch {
  BlockedProductFn fn;
  const char* name;
};

/// Resolved once at startup; kSimd products go through dispatch.fn.
SimdDispatch DetectSimd() {
#if defined(SPANNERS_SIMD_X86)
  if (__builtin_cpu_supports("avx2")) return {&BlockedProductAvx2, "avx2"};
#elif defined(SPANNERS_SIMD_NEON)
  return {&BlockedProductNeon, "neon"};
#endif
  return {&BlockedProductUnrolled, "portable"};
}

const SimdDispatch g_simd = DetectSimd();

}  // namespace

void BoolMatrix::SetMultiplyKernel(MultiplyKernel kernel) { g_multiply_kernel = kernel; }

BoolMatrix::MultiplyKernel BoolMatrix::multiply_kernel() { return g_multiply_kernel; }

const char* BoolMatrix::SimdBackendName() { return g_simd.name; }

BoolMatrix BoolMatrix::Identity(std::size_t n) {
  BoolMatrix m(n);
  for (std::size_t i = 0; i < n; ++i) m.Set(i, i);
  return m;
}

BoolMatrix BoolMatrix::Transposed() const {
  BoolMatrix result;
  TransposeInto(&result);
  return result;
}

void BoolMatrix::TransposeInto(BoolMatrix* result) const {
  if (result->size_ != size_) *result = BoolMatrix(size_);
  uint64_t* out = result->bits_.data();
  std::memset(out, 0, result->bits_.size() * sizeof(uint64_t));
  for (std::size_t p = 0; p < size_; ++p) {
    const uint64_t* row = &bits_[p * words_per_row_];
    const std::size_t p_word = p >> 6;
    const uint64_t p_mask = uint64_t{1} << (p & 63);
    for (std::size_t w = 0; w < words_per_row_; ++w) {
      uint64_t bits = row[w];
      while (bits != 0) {
        const std::size_t q = (w << 6) + static_cast<std::size_t>(__builtin_ctzll(bits));
        bits &= bits - 1;
        out[q * words_per_row_ + p_word] |= p_mask;
      }
    }
  }
}

BoolMatrix BoolMatrix::Multiply(const BoolMatrix& other) const {
  BoolMatrix result;
  MultiplyInto(other, &result);
  return result;
}

void BoolMatrix::MultiplyInto(const BoolMatrix& other, BoolMatrix* result) const {
  Require(size_ == other.size_, "BoolMatrix::Multiply: dimension mismatch");
  Require(result != this && result != &other, "BoolMatrix::MultiplyInto: aliasing");
  if (g_multiply_kernel == MultiplyKernel::kSparseRows) {
    MultiplySparseInto(other, result);
    return;
  }
  // Density cutoff: the sparse-rows loop costs ~CountOnes(this) row-ORs of
  // words_per_row_ words each, while the blocked kernel scans at least one
  // word for each of the size_^2 output bits (plus the transpose). For the
  // sparse transition matrices of small NFAs the sparse loop wins outright;
  // only hand dense products to the transpose + AND-reduce kernel.
  if (CountOnes() * words_per_row_ < size_ * size_ / 2) {
    MultiplySparseInto(other, result);
    return;
  }
  // Per-thread scratch: reuses the transpose allocation across the millions
  // of products of an SLP preprocessing pass.
  static thread_local BoolMatrix transposed;
  other.TransposeInto(&transposed);
  MultiplyTransposedInto(transposed, result);
}

std::size_t BoolMatrix::CountOnes() const {
  std::size_t ones = 0;
  for (const uint64_t word : bits_) ones += static_cast<std::size_t>(__builtin_popcountll(word));
  return ones;
}

void BoolMatrix::MultiplyTransposedInto(const BoolMatrix& other_transposed,
                                        BoolMatrix* result) const {
  Require(size_ == other_transposed.size_,
          "BoolMatrix::MultiplyTransposedInto: dimension mismatch");
  Require(result != this && result != &other_transposed,
          "BoolMatrix::MultiplyTransposedInto: aliasing");
  if (result->size_ != size_) *result = BoolMatrix(size_);
  uint64_t* out = result->bits_.data();
  std::memset(out, 0, result->bits_.size() * sizeof(uint64_t));
  const std::size_t row_bytes = words_per_row_ * sizeof(uint64_t);
  // Square-ish blocking: a block of left rows and a block of transposed
  // right rows together fit in kL1BlockBytes, so the inner AND-reduce
  // streams L1-resident data only.
  const std::size_t block = row_bytes == 0
                                ? size_
                                : std::max<std::size_t>(1, kL1BlockBytes / (2 * row_bytes));
  // The vectorized reduce only pays off when a row spans at least one full
  // vector (4 words); below that the scalar early-exit loop wins.
  const bool simd = g_multiply_kernel == MultiplyKernel::kSimd && words_per_row_ >= 4;
  const BlockedProductFn product = simd ? g_simd.fn : &BlockedProductScalar;
  product(bits_.data(), other_transposed.bits_.data(), out, size_, words_per_row_,
          block);
}

void BoolMatrix::MultiplySparseInto(const BoolMatrix& other, BoolMatrix* result) const {
  if (result->size_ != size_) *result = BoolMatrix(size_);
  uint64_t* out_bits = result->bits_.data();
  std::memset(out_bits, 0, result->bits_.size() * sizeof(uint64_t));
  for (std::size_t p = 0; p < size_; ++p) {
    uint64_t* out = &out_bits[p * words_per_row_];
    const uint64_t* row = &bits_[p * words_per_row_];
    for (std::size_t wr = 0; wr < words_per_row_; ++wr) {
      uint64_t bitsofrow = row[wr];
      while (bitsofrow != 0) {
        const std::size_t r = (wr << 6) + static_cast<std::size_t>(__builtin_ctzll(bitsofrow));
        bitsofrow &= bitsofrow - 1;
        const uint64_t* other_row = &other.bits_[r * words_per_row_];
        for (std::size_t w = 0; w < words_per_row_; ++w) out[w] |= other_row[w];
      }
    }
  }
}

BoolMatrix BoolMatrix::Or(const BoolMatrix& other) const {
  Require(size_ == other.size_, "BoolMatrix::Or: dimension mismatch");
  BoolMatrix result = *this;
  for (std::size_t i = 0; i < bits_.size(); ++i) result.bits_[i] |= other.bits_[i];
  return result;
}

bool BoolMatrix::RowAny(std::size_t row) const {
  for (std::size_t w = 0; w < words_per_row_; ++w) {
    if (bits_[row * words_per_row_ + w] != 0) return true;
  }
  return false;
}

BoolMatrix BoolMatrix::Closure() const {
  BoolMatrix result = Or(Identity(size_));
  // Warshall with bit-packed row updates: if result[p][r] then
  // row(p) |= row(r).
  for (std::size_t r = 0; r < size_; ++r) {
    const uint64_t* row_r = &result.bits_[r * words_per_row_];
    for (std::size_t p = 0; p < size_; ++p) {
      if (!result.Get(p, r)) continue;
      uint64_t* row_p = &result.bits_[p * words_per_row_];
      for (std::size_t w = 0; w < words_per_row_; ++w) row_p[w] |= row_r[w];
    }
  }
  return result;
}

std::vector<uint64_t> BoolMatrix::VecMultiply(const std::vector<uint64_t>& vec) const {
  Require(vec.size() == words_per_row_, "BoolMatrix::VecMultiply: dimension mismatch");
  std::vector<uint64_t> result(words_per_row_, 0);
  for (std::size_t wr = 0; wr < words_per_row_; ++wr) {
    uint64_t bits = vec[wr];
    while (bits != 0) {
      const std::size_t p = (wr << 6) + static_cast<std::size_t>(__builtin_ctzll(bits));
      bits &= bits - 1;
      const uint64_t* row = &bits_[p * words_per_row_];
      for (std::size_t w = 0; w < words_per_row_; ++w) result[w] |= row[w];
    }
  }
  return result;
}

std::string BoolMatrix::ToString() const {
  std::string out;
  out.reserve(size_ * (size_ + 1));
  for (std::size_t p = 0; p < size_; ++p) {
    for (std::size_t q = 0; q < size_; ++q) out.push_back(Get(p, q) ? '1' : '0');
    out.push_back('\n');
  }
  return out;
}

}  // namespace spanners
