/// \file common.hpp
/// \brief Shared small helpers used across the spanners library.
///
/// Error-handling conventions (DESIGN.md §5): *programming errors* --
/// violated preconditions, internal invariants -- abort via Require /
/// FatalError; *caller data errors* -- unparsable patterns, unsupported
/// automata, out-of-range CDE expressions -- are reported as values via
/// Status (operations without a result) and Expected<T> (operations with
/// one). Older per-module result structs (ParseResult, CdeParseResult,
/// CdeEvalResult) remain as thin shims over these types.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <utility>

namespace spanners {

/// Terminates the program with a message. Used for programming errors
/// (precondition violations) that indicate a bug in the caller, mirroring
/// assert semantics but active in release builds as well.
[[noreturn]] inline void FatalError(const std::string& message) {
  std::cerr << "spanners: fatal: " << message << std::endl;
  std::abort();
}

/// Checks a precondition; aborts with \p message if \p condition is false.
inline void Require(bool condition, const char* message) {
  if (!condition) FatalError(message);
}

/// The outcome of an operation that has no result value: success, or an
/// error carrying a human-readable diagnostic.
class Status {
 public:
  /// Success.
  Status() = default;

  static Status Ok() { return Status(); }

  /// An error; \p message must be non-empty.
  static Status Error(std::string message) {
    Require(!message.empty(), "Status::Error: empty message");
    Status s;
    s.message_ = std::move(message);
    return s;
  }

  bool ok() const { return message_.empty(); }

  /// The diagnostic; empty iff ok().
  const std::string& message() const { return message_; }

 private:
  std::string message_;
};

/// A value of type T, or a Status describing why it could not be produced.
/// Accessing value() on an error (or status().message() semantics on
/// success) follows the Require convention: misuse is a programming error.
template <typename T>
class Expected {
 public:
  /// Success.
  Expected(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  /// Failure; \p status must be an error.
  Expected(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    Require(!status_.ok(), "Expected: constructed from an ok Status");
  }

  bool ok() const { return value_.has_value(); }

  const Status& status() const { return status_; }

  /// The diagnostic of the underlying status (empty iff ok()).
  const std::string& error() const { return status_.message(); }

  const T& value() const& {
    Require(ok(), "Expected::value: no value (check ok() first)");
    return *value_;
  }
  T& value() & {
    Require(ok(), "Expected::value: no value (check ok() first)");
    return *value_;
  }
  T&& value() && {
    Require(ok(), "Expected::value: no value (check ok() first)");
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// The value, or \p fallback when this is an error.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Convenience factory mirroring Status::Error for Expected returns:
///   return Unexpected("pattern ends inside a character class");
inline Status Unexpected(std::string message) { return Status::Error(std::move(message)); }

}  // namespace spanners
