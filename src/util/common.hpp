/// \file common.hpp
/// \brief Shared small helpers used across the spanners library.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

namespace spanners {

/// Terminates the program with a message. Used for programming errors
/// (precondition violations) that indicate a bug in the caller, mirroring
/// assert semantics but active in release builds as well.
[[noreturn]] inline void FatalError(const std::string& message) {
  std::cerr << "spanners: fatal: " << message << std::endl;
  std::abort();
}

/// Checks a precondition; aborts with \p message if \p condition is false.
inline void Require(bool condition, const char* message) {
  if (!condition) FatalError(message);
}

}  // namespace spanners
