/// \file metrics.hpp
/// \brief Engine-wide metrics: counters, gauges, latency histograms
/// (DESIGN.md §1.9).
///
/// The survey's headline results are complexity claims -- linear
/// preprocessing with constant-delay enumeration (§2.5), O(|S| * n^3)
/// matrix evaluation over SLPs (§4.2), O(|phi| * log d) CDE updates
/// (§4.3) -- and this registry turns them into runtime-observable numbers:
/// every engine layer records into named metrics, and a MetricsSnapshot
/// (Session::GetMetricsSnapshot, or any example's --stats flag) reports
/// whether a running query actually exhibits the promised shapes.
///
/// Cost model (the hot-path contract):
///  * Recording never takes a lock. Counters are per-thread-sharded relaxed
///    atomics (one fetch_add on a thread-owned cache line); histograms are a
///    few relaxed atomic adds plus a CAS loop for the max; gauges are one
///    atomic store.
///  * Registry lookups (name -> handle) take a mutex, so call sites resolve
///    their handles once -- typically a function-local static reference --
///    and record through the stable handle afterwards.
///  * Every recording site is gated on the runtime trace level
///    (SPANNERS_TRACE=off|counters|spans). At kOff a site costs a single
///    relaxed load + branch; kCounters enables counter/gauge/histogram
///    recording; kSpans additionally captures timed spans (util/trace.hpp).
///
/// Snapshots may race with recording by design: all cells are atomics, so a
/// concurrent Snapshot() sees some interleaving of the updates (never a torn
/// value, never a data race -- tests/metrics_test.cpp runs this under TSan).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace spanners {

// --- the runtime trace level ------------------------------------------------

/// What the observability layer records, from cheapest to richest.
enum class TraceLevel : uint8_t {
  kOff = 0,       ///< recording sites reduce to one load + branch
  kCounters = 1,  ///< counters, gauges, histograms (the default)
  kSpans = 2,     ///< counters + scoped timed spans (util/trace.hpp)
};

namespace metrics_detail {
extern std::atomic<uint8_t> g_trace_level;  ///< initialised from SPANNERS_TRACE

/// This thread's counter-shard index + 1 (0 = not yet assigned). Trivially
/// constructed (constinit), so reading it is a plain TLS load -- no guard
/// branch, no function call on the Record/Add hot path.
extern thread_local std::size_t t_counter_shard;
}

/// The current level; one relaxed load (safe to call from any thread).
inline TraceLevel trace_level() {
  return static_cast<TraceLevel>(
      metrics_detail::g_trace_level.load(std::memory_order_relaxed));
}

/// Runtime override (tests, embedders). Not synchronised with in-flight
/// recordings beyond atomicity: sites observe the new level on their next
/// check.
void SetTraceLevel(TraceLevel level);

/// Parses "off" | "counters" | "spans" (the SPANNERS_TRACE values).
/// Returns true and sets \p out on success.
bool ParseTraceLevel(std::string_view name, TraceLevel* out);

/// Short lower-case name of \p level ("off", "counters", "spans").
std::string_view TraceLevelName(TraceLevel level);

/// True iff counter/gauge/histogram recording is on. The canonical guard:
///   if (MetricsEnabled()) metrics.evaluations.Increment();
inline bool MetricsEnabled() { return trace_level() >= TraceLevel::kCounters; }

/// True iff span capture is on (util/trace.hpp checks this).
inline bool SpansEnabled() { return trace_level() >= TraceLevel::kSpans; }

// --- metric primitives ------------------------------------------------------

/// A monotonic counter, sharded per thread so concurrent hot-path increments
/// never contend on one cache line. Value() sums the shards (racing adds may
/// or may not be included; the count is never torn).
class Counter {
 public:
  static constexpr std::size_t kShards = 8;

  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t n) {
    shards_[ShardIndex()].value.fetch_add(n, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  /// The calling thread's shard index: a cached TLS read on the hot path
  /// (kernel-adjacent counters record once per node/tuple, so re-resolving
  /// the shard through a guarded thread_local every call was measurable).
  static std::size_t ShardIndex() {
    const std::size_t cached = metrics_detail::t_counter_shard;
    if (cached != 0) [[likely]] return cached - 1;
    return AssignShardIndex();
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };

  /// Cold path of ShardIndex(): assigns this thread a stable shard index
  /// (distinct threads spread round-robin over shards) and caches it in
  /// metrics_detail::t_counter_shard.
  static std::size_t AssignShardIndex();

  std::array<Shard, kShards> shards_;
};

/// A point-in-time signed value (queue depths, cache sizes).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A fixed-bucket histogram over non-negative values (latencies in ns,
/// enumeration delays in steps). Bucket b holds the values of bit width b:
/// bucket 0 = {0}, bucket b = [2^(b-1), 2^b - 1] -- 65 buckets cover the
/// full uint64 range, so recording never allocates or rebuckets. Quantiles
/// are bucket upper bounds (exact max is tracked separately).
class Histogram {
 public:
  static constexpr std::size_t kNumBuckets = 65;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(uint64_t value) {
    buckets_[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    uint64_t seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
    }
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  uint64_t bucket(std::size_t b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }

  /// The bucket index \p value falls into.
  static std::size_t BucketOf(uint64_t value);

  /// Inclusive upper bound of bucket \p b (0, 1, 3, 7, ...; UINT64_MAX for
  /// the last).
  static uint64_t BucketUpperBound(std::size_t b);

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

// --- snapshots --------------------------------------------------------------

/// A histogram read at one point in time, with derived quantiles.
struct HistogramStats {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  std::array<uint64_t, Histogram::kNumBuckets> buckets{};

  double mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
  }

  /// Upper bound of the bucket holding the q-quantile (q in [0, 1]); 0 when
  /// empty. p99 growing by one bucket means the delay distribution's tail
  /// crossed a power-of-two boundary.
  uint64_t Quantile(double q) const;

  /// Index of the bucket holding the q-quantile (0 when empty); the unit the
  /// constant-delay assertions compare in (bucket index == log2 scale).
  std::size_t QuantileBucket(double q) const;

  uint64_t p50() const { return Quantile(0.50); }
  uint64_t p95() const { return Quantile(0.95); }
  uint64_t p99() const { return Quantile(0.99); }

  /// This snapshot minus an earlier one of the same histogram (per-window
  /// stats; max is carried from *this, as the exact window max is not
  /// recoverable from two cumulative snapshots).
  HistogramStats Since(const HistogramStats& earlier) const;
};

/// Everything the registry knew at one point in time. Names sort
/// lexicographically (stable text reports).
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramStats> histograms;

  /// Counter value by name (0 when absent -- metrics appear on first use).
  uint64_t counter(const std::string& name) const;

  /// The text report, one metric per line (stable, machine-parseable;
  /// format documented in DESIGN.md §1.9):
  ///   counter <name> <value>
  ///   gauge <name> <value>
  ///   histogram <name> count=<n> sum=<s> mean=<m> p50=<a> p95=<b> p99=<c> max=<d>
  std::string ToString() const;
};

// --- the registry -----------------------------------------------------------

/// The process-wide name -> metric map. Get* interns the name on first use
/// and returns a stable reference (metrics live for the process lifetime);
/// the mutex guards only interning and snapshotting, never recording.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  /// Reads every registered metric. Safe to call while other threads record
  /// (atomic cells; see the header comment).
  MetricsSnapshot Snapshot() const;

 private:
  mutable std::mutex mutex_;  ///< guards the maps, not the metric cells
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Monotonic wall-clock in nanoseconds (steady_clock), the unit of every
/// *_ns metric and of trace spans.
uint64_t NowNanos();

/// RAII latency probe: records NowNanos() elapsed between construction and
/// destruction into \p histogram, gated on MetricsEnabled() at construction
/// (one branch when tracing is off).
class ScopedLatency {
 public:
  explicit ScopedLatency(Histogram& histogram)
      : histogram_(MetricsEnabled() ? &histogram : nullptr),
        start_(histogram_ != nullptr ? NowNanos() : 0) {}

  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

  ~ScopedLatency() {
    if (histogram_ != nullptr) histogram_->Record(NowNanos() - start_);
  }

 private:
  Histogram* histogram_;
  uint64_t start_;
};

}  // namespace spanners
