/// \file blob_io.hpp
/// \brief Offset-based on-disk blobs and append-only record logs (DESIGN.md
/// §1.13).
///
/// The durable building blocks of the persistent-epoch architecture
/// (src/slp/slp_serialize.*, src/store/persist.*):
///
///  * BlobWriter -- assembles named sections and writes one *blob*: a fixed
///    little-endian header, a CRC32-protected section table, then the
///    section payloads at 8-byte-aligned offsets, each with its own CRC32.
///    Files land atomically (written to a sibling ".tmp", fsync'd, renamed
///    over the target, directory fsync'd), so a reader never observes a
///    half-written blob.
///  * MappedBlob -- opens a blob read-only via mmap. Open() validates only
///    the header and the section table (O(size-of-header) work, the lazy
///    property the store's snapshot-open path relies on); section payload
///    CRCs are verified on demand with VerifySection / VerifyAll.
///  * LogWriter / ReadLog -- an append-only record log: a small header
///    identifying the snapshot lineage it extends, then length-prefixed,
///    CRC32'd records, each fsync'd before the append returns. ReadLog
///    stops at the first torn or corrupt record and reports the byte offset
///    of the durable prefix, which recovery truncates back to.
///
/// Fault injection: when SPANNERS_CRASH_AFTER_BYTES=N is set, the process
/// _exit()s mid-write after N file bytes have been written through this
/// layer (counted process-wide, the partial prefix of the crossing write is
/// flushed first) -- a deterministic torn-write generator for the
/// crash-recovery tests (tests/persist_test.cpp, CI crash-recovery job).
///
/// All integers are little-endian on disk; the implementation static_asserts
/// a little-endian host (every supported target).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/common.hpp"

namespace spanners {

/// CRC-32 (IEEE 802.3, reflected) of \p bytes, seeded with \p seed (pass the
/// previous return value to continue a running checksum).
uint32_t Crc32(std::string_view bytes, uint32_t seed = 0);

/// Little-endian append helpers used by every serializer.
void AppendU8(std::string* out, uint8_t value);
void AppendU32(std::string* out, uint32_t value);
void AppendU64(std::string* out, uint64_t value);

/// Little-endian cursor over a serialized buffer. Reads past the end are
/// caller-data errors: ok() turns false and every later read returns 0.
class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

  uint8_t ReadU8();
  uint32_t ReadU32();
  uint64_t ReadU64();
  /// The next \p count raw bytes (empty + !ok() when short).
  std::string_view ReadBytes(std::size_t count);

  bool ok() const { return ok_; }
  std::size_t remaining() const { return bytes_.size() - position_; }

 private:
  std::string_view bytes_;
  std::size_t position_ = 0;
  bool ok_ = true;
};

/// Builds a blob in memory and writes it atomically.
class BlobWriter {
 public:
  /// Adds section \p name (at most 15 bytes, unique within the blob).
  void AddSection(std::string_view name, std::string payload);

  /// Serializes header + table + payloads into one buffer (deterministic:
  /// the same sections always produce the same bytes).
  std::string Finish() const;

  /// Finish() + atomic file write: <path>.tmp, fsync, rename, fsync(dir).
  Status WriteFile(const std::string& path) const;

 private:
  struct PendingSection {
    std::string name;
    std::string payload;
  };
  std::vector<PendingSection> sections_;
};

/// A blob opened read-only. The mapping (or, on exotic platforms, the
/// in-memory copy) stays valid for the lifetime of this object; zero-copy
/// consumers (the mapped SLP arena) keep a shared_ptr to it.
class MappedBlob {
 public:
  struct Section {
    std::string_view name;   ///< points into the mapping
    std::string_view bytes;  ///< payload, points into the mapping
    uint32_t crc32 = 0;      ///< expected payload checksum
  };

  /// Opens and validates header + section table only: O(header + table)
  /// regardless of payload sizes. Section payloads are *not* checksummed
  /// here -- call VerifySection / VerifyAll when integrity matters more
  /// than open latency.
  static Expected<std::shared_ptr<MappedBlob>> Open(const std::string& path);

  ~MappedBlob();

  MappedBlob(const MappedBlob&) = delete;
  MappedBlob& operator=(const MappedBlob&) = delete;

  /// The section named \p name, or nullptr.
  const Section* Find(std::string_view name) const;

  const std::vector<Section>& sections() const { return sections_; }

  /// Checks one section's payload CRC. O(section size).
  Status VerifySection(const Section& section) const;

  /// Checks every section payload. O(file size).
  Status VerifyAll() const;

  std::size_t file_size() const { return size_; }

 private:
  MappedBlob() = default;

  const char* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;          ///< mmap (true) vs owned heap copy (false)
  std::string owned_;            ///< fallback storage when !mapped_
  std::vector<Section> sections_;
};

/// One record of a log file (payload only; framing is internal).
struct LogRecord {
  std::string payload;
};

/// What ReadLog recovered from a log file.
struct LogContents {
  std::string header_payload;      ///< the lineage header the log was created with
  std::vector<LogRecord> records;  ///< every intact record, in append order
  std::size_t durable_bytes = 0;   ///< file prefix covered by intact records
  bool torn_tail = false;          ///< trailing bytes past durable_bytes exist
};

/// Reads a record log. A missing file is an error; an empty or torn file
/// recovers the longest intact prefix (torn_tail notes that bytes were
/// dropped). Corruption *before* the tail (a bad header) is an error.
Expected<LogContents> ReadLog(const std::string& path);

/// Appends CRC-framed records to a log file, fsync'ing each append before
/// returning (the write-ahead durability point of DocumentStore::Commit).
class LogWriter {
 public:
  /// Opens \p path for appending. A new (or truncated) file is started with
  /// \p header_payload; an existing one must carry the same header --
  /// recovery reads it back with ReadLog first and truncates the torn tail
  /// via \p resume_at_bytes (pass LogContents::durable_bytes).
  static Expected<LogWriter> Create(const std::string& path,
                                    std::string_view header_payload);
  static Expected<LogWriter> Resume(const std::string& path,
                                    std::size_t resume_at_bytes);

  LogWriter(LogWriter&& other) noexcept;
  LogWriter& operator=(LogWriter&& other) noexcept;
  ~LogWriter();

  LogWriter(const LogWriter&) = delete;
  LogWriter& operator=(const LogWriter&) = delete;

  /// Appends one record; when \p sync, fsyncs before returning.
  Status Append(std::string_view payload, bool sync);

 private:
  explicit LogWriter(int fd) : fd_(fd) {}
  int fd_ = -1;
};

/// Testing hook: re-reads SPANNERS_CRASH_AFTER_BYTES and resets the
/// process-wide written-byte counter (the env var is otherwise read once).
void ResetFaultInjectionForTesting();

}  // namespace spanners
