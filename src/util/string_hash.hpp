/// \file string_hash.hpp
/// \brief Prefix double-hashing for O(1) factor-equality queries.
///
/// The refl-spanner model-checking algorithm (paper, Section 3.3) replaces
/// reference arcs of the NFA by "read the factor w_x of D" jumps. Checking
/// whether the factor of D starting at a given position equals w_x must be
/// O(1) after linear preprocessing to obtain the overall linear running time
/// the paper cites; this class provides exactly that primitive via two
/// independent polynomial rolling hashes mod Mersenne prime 2^61 - 1.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace spanners {

/// Immutable prefix-hash table over one string.
class PrefixHash {
 public:
  PrefixHash() = default;

  /// Builds the table in O(|text|).
  explicit PrefixHash(std::string_view text);

  /// Length of the indexed text.
  std::size_t length() const { return length_; }

  /// 128-bit combined hash of the factor text[begin, begin+len) using
  /// 0-based \p begin. Precondition: begin + len <= length() -- enforced
  /// (overflow-safely) with a fatal diagnostic; len == 0 is valid anywhere
  /// in [0, length()], including on an empty text.
  std::pair<uint64_t, uint64_t> HashOf(std::size_t begin, std::size_t len) const;

  /// True iff text[b1, b1+len) == text[b2, b2+len). O(1).
  bool FactorsEqual(std::size_t b1, std::size_t b2, std::size_t len) const;

 private:
  static constexpr uint64_t kMod = (uint64_t{1} << 61) - 1;
  static constexpr uint64_t kBase1 = 131;
  static constexpr uint64_t kBase2 = 137;

  static uint64_t MulMod(uint64_t a, uint64_t b);

  std::size_t length_ = 0;
  std::vector<uint64_t> prefix1_, prefix2_;  // prefix hashes, length+1 entries
  std::vector<uint64_t> power1_, power2_;    // base powers
};

/// Convenience: true iff a[a_begin, a_begin+len) == b, where \p b_hash is a
/// PrefixHash over the string b built separately. Compares via both tables.
bool CrossFactorsEqual(const PrefixHash& a, std::size_t a_begin, const PrefixHash& b,
                       std::size_t b_begin, std::size_t len);

}  // namespace spanners
