/// \file random.hpp
/// \brief Deterministic synthetic-workload generators.
///
/// The paper evaluates no real corpora (it is a survey); its complexity
/// claims are asymptotic in |D|, |S| (SLP size) and the number of variables.
/// These generators expose exactly those axes: document length and
/// redundancy (which controls SLP compressibility) are independent knobs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace spanners {

/// SplitMix64-seeded xorshift generator; deterministic across platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + 0x9E3779B97F4A7C15ull) {}

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  uint64_t NextBelow(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

 private:
  uint64_t state_;
};

/// Uniformly random string over \p alphabet of length \p length.
std::string RandomString(Rng& rng, std::string_view alphabet, std::size_t length);

/// DNA-like sequence (alphabet acgt) with repeated "gene" blocks: a pool of
/// \p pool_size random blocks of length \p block_length is sampled with
/// replacement until \p length characters are emitted. Small pools yield
/// highly SLP-compressible documents.
std::string DnaLike(Rng& rng, std::size_t length, std::size_t pool_size,
                    std::size_t block_length);

/// Apache-style synthetic log: one line per record,
/// "host-H user-U GET /path/P status=S size=Z\n" with small vocabularies, so
/// the document is realistic extraction input and compresses well.
std::string SyntheticLog(Rng& rng, std::size_t lines);

/// Boilerplate-heavy text: \p paragraphs copies of a fixed template with a
/// fraction \p noise of randomly replaced characters. noise = 0 gives
/// near-optimal SLP compression; noise = 1 gives incompressible text.
std::string BoilerplateText(Rng& rng, std::size_t paragraphs, double noise);

}  // namespace spanners
