#include "util/blob_io.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstdlib>
#include <cstring>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace spanners {

static_assert(std::endian::native == std::endian::little,
              "blob_io: on-disk format is little-endian and the readers are "
              "zero-copy; big-endian hosts would need byte-swapping loaders");

namespace {

// --- fault injection ---------------------------------------------------------

/// Bytes this process may still write through blob_io before the injected
/// crash; SIZE_MAX = injection disabled. Loaded from the environment once.
std::atomic<std::size_t> g_crash_budget{SIZE_MAX};
std::atomic<bool> g_crash_loaded{false};

void LoadCrashBudget() {
  const char* env = std::getenv("SPANNERS_CRASH_AFTER_BYTES");
  std::size_t budget = SIZE_MAX;
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(env, &end, 10);
    if (end != nullptr && *end == '\0') budget = static_cast<std::size_t>(parsed);
  }
  g_crash_budget.store(budget, std::memory_order_relaxed);
  g_crash_loaded.store(true, std::memory_order_release);
}

/// Writes \p size bytes to \p fd. Under fault injection, writes only the
/// bytes left in the budget, flushes, and _exit()s -- a torn write exactly
/// at the configured byte.
bool FaultedWriteAll(int fd, const char* data, std::size_t size) {
  if (!g_crash_loaded.load(std::memory_order_acquire)) LoadCrashBudget();
  std::size_t budget = g_crash_budget.load(std::memory_order_relaxed);
  bool crash_after = false;
  if (budget != SIZE_MAX) {
    if (budget <= size) {
      size = budget;
      crash_after = true;
    }
    g_crash_budget.store(budget - size, std::memory_order_relaxed);
  }
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) return false;
    written += static_cast<std::size_t>(n);
  }
  if (crash_after) {
    ::fsync(fd);  // make the torn prefix durable, like a real power cut mid-write
    ::_exit(86);  // 86 = injected crash (asserted by tests/persist_test.cpp)
  }
  return true;
}

// --- blob format -------------------------------------------------------------

constexpr uint64_t kBlobMagic = 0x424f4c424e415053ull;  // "SPANBLOB"
constexpr uint32_t kBlobFormatVersion = 1;
constexpr std::size_t kSectionNameMax = 15;
constexpr std::size_t kHeaderBytes = 8 + 4 + 4 + 8 + 4 + 4;  // 32
// Table entry: name[16] (NUL-padded), offset u64, size u64, crc u32, pad u32.
constexpr std::size_t kTableEntryBytes = 16 + 8 + 8 + 4 + 4;

std::size_t AlignUp8(std::size_t n) { return (n + 7) & ~std::size_t{7}; }

// --- log format --------------------------------------------------------------

constexpr uint64_t kLogMagic = 0x474f4c574e415053ull;  // "SPANWLOG"
constexpr uint32_t kLogFormatVersion = 1;

Status SyncParentDir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Status::Error("blob_io: cannot open directory " + dir);
  ::fsync(fd);  // best effort: rename durability on crash
  ::close(fd);
  return Status::Ok();
}

}  // namespace

uint32_t Crc32(std::string_view bytes, uint32_t seed) {
  // Reflected CRC-32 (polynomial 0xEDB88320), nibble-at-a-time: small table,
  // no dependence on hardware CRC instructions.
  static constexpr std::array<uint32_t, 16> kTable = [] {
    std::array<uint32_t, 16> table{};
    for (uint32_t i = 0; i < 16; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 4; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0xedb88320u : 0u);
      }
      table[i] = crc;
    }
    return table;
  }();
  uint32_t crc = ~seed;
  for (const char c : bytes) {
    const auto byte = static_cast<unsigned char>(c);
    crc = kTable[(crc ^ byte) & 0xf] ^ (crc >> 4);
    crc = kTable[(crc ^ (byte >> 4)) & 0xf] ^ (crc >> 4);
  }
  return ~crc;
}

void AppendU8(std::string* out, uint8_t value) {
  out->push_back(static_cast<char>(value));
}

void AppendU32(std::string* out, uint32_t value) {
  char bytes[4];
  std::memcpy(bytes, &value, 4);
  out->append(bytes, 4);
}

void AppendU64(std::string* out, uint64_t value) {
  char bytes[8];
  std::memcpy(bytes, &value, 8);
  out->append(bytes, 8);
}

uint8_t ByteReader::ReadU8() {
  if (position_ + 1 > bytes_.size()) {
    ok_ = false;
    return 0;
  }
  return static_cast<uint8_t>(bytes_[position_++]);
}

uint32_t ByteReader::ReadU32() {
  if (position_ + 4 > bytes_.size()) {
    ok_ = false;
    return 0;
  }
  uint32_t value;
  std::memcpy(&value, bytes_.data() + position_, 4);
  position_ += 4;
  return value;
}

uint64_t ByteReader::ReadU64() {
  if (position_ + 8 > bytes_.size()) {
    ok_ = false;
    return 0;
  }
  uint64_t value;
  std::memcpy(&value, bytes_.data() + position_, 8);
  position_ += 8;
  return value;
}

std::string_view ByteReader::ReadBytes(std::size_t count) {
  if (position_ + count > bytes_.size()) {
    ok_ = false;
    return {};
  }
  const std::string_view view = bytes_.substr(position_, count);
  position_ += count;
  return view;
}

void BlobWriter::AddSection(std::string_view name, std::string payload) {
  Require(!name.empty() && name.size() <= kSectionNameMax,
          "BlobWriter::AddSection: section name must be 1..15 bytes");
  for (const PendingSection& section : sections_) {
    Require(section.name != name, "BlobWriter::AddSection: duplicate section");
  }
  sections_.push_back({std::string(name), std::move(payload)});
}

std::string BlobWriter::Finish() const {
  // Layout: header | table | payloads (each 8-byte aligned, zero padding).
  const std::size_t table_offset = kHeaderBytes;
  const std::size_t table_bytes = sections_.size() * kTableEntryBytes;
  std::size_t offset = AlignUp8(table_offset + table_bytes);

  std::string table;
  table.reserve(table_bytes);
  for (const PendingSection& section : sections_) {
    char name[16] = {};
    std::memcpy(name, section.name.data(), section.name.size());
    table.append(name, 16);
    AppendU64(&table, offset);
    AppendU64(&table, section.payload.size());
    AppendU32(&table, Crc32(section.payload));
    AppendU32(&table, 0);  // pad
    offset = AlignUp8(offset + section.payload.size());
  }
  const std::size_t file_size = offset;

  std::string header;
  header.reserve(kHeaderBytes);
  AppendU64(&header, kBlobMagic);
  AppendU32(&header, kBlobFormatVersion);
  AppendU32(&header, static_cast<uint32_t>(sections_.size()));
  AppendU64(&header, file_size);
  AppendU32(&header, Crc32(table));
  // Header CRC covers everything above it; computed last, stored last.
  AppendU32(&header, Crc32(header));

  std::string blob;
  blob.reserve(file_size);
  blob += header;
  blob += table;
  for (const PendingSection& section : sections_) {
    blob.append(AlignUp8(blob.size()) - blob.size(), '\0');
    blob += section.payload;
  }
  blob.append(file_size - blob.size(), '\0');
  return blob;
}

Status BlobWriter::WriteFile(const std::string& path) const {
  const std::string blob = Finish();
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::Error("blob_io: cannot create " + tmp);
  const bool written = FaultedWriteAll(fd, blob.data(), blob.size());
  const bool synced = written && ::fsync(fd) == 0;
  ::close(fd);
  if (!written || !synced) {
    ::unlink(tmp.c_str());
    return Status::Error("blob_io: short write to " + tmp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return Status::Error("blob_io: cannot rename " + tmp + " -> " + path);
  }
  return SyncParentDir(path);
}

Expected<std::shared_ptr<MappedBlob>> MappedBlob::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Unexpected("blob_io: cannot open " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return Unexpected("blob_io: cannot stat " + path);
  }
  const auto size = static_cast<std::size_t>(st.st_size);

  auto blob = std::shared_ptr<MappedBlob>(new MappedBlob());
  blob->size_ = size;
  void* mapping = size == 0
                      ? MAP_FAILED
                      : ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  if (mapping != MAP_FAILED) {
    blob->data_ = static_cast<const char*>(mapping);
    blob->mapped_ = true;
  } else {
    // mmap unavailable (size 0, weird filesystem): fall back to a heap copy.
    blob->owned_.resize(size);
    std::size_t done = 0;
    while (done < size) {
      const ssize_t n = ::pread(fd, blob->owned_.data() + done, size - done,
                                static_cast<off_t>(done));
      if (n <= 0) {
        ::close(fd);
        return Unexpected("blob_io: cannot read " + path);
      }
      done += static_cast<std::size_t>(n);
    }
    blob->data_ = blob->owned_.data();
  }
  ::close(fd);

  // Validate header + section table only: O(header), never O(payloads).
  const std::string_view bytes(blob->data_, blob->size_);
  if (bytes.size() < kHeaderBytes) {
    return Unexpected("blob_io: " + path + " is too small to be a blob");
  }
  ByteReader header(bytes.substr(0, kHeaderBytes));
  const uint64_t magic = header.ReadU64();
  const uint32_t format = header.ReadU32();
  const uint32_t section_count = header.ReadU32();
  const uint64_t file_size = header.ReadU64();
  const uint32_t table_crc = header.ReadU32();
  const uint32_t header_crc = header.ReadU32();
  if (magic != kBlobMagic) return Unexpected("blob_io: " + path + ": bad magic");
  if (Crc32(bytes.substr(0, kHeaderBytes - 4)) != header_crc) {
    return Unexpected("blob_io: " + path + ": header checksum mismatch");
  }
  if (format != kBlobFormatVersion) {
    return Unexpected("blob_io: " + path + ": unsupported format version " +
                      std::to_string(format));
  }
  if (file_size != bytes.size()) {
    return Unexpected("blob_io: " + path + ": truncated (header says " +
                      std::to_string(file_size) + " bytes, file has " +
                      std::to_string(bytes.size()) + ")");
  }
  const std::size_t table_bytes = section_count * kTableEntryBytes;
  if (kHeaderBytes + table_bytes > bytes.size()) {
    return Unexpected("blob_io: " + path + ": section table out of bounds");
  }
  const std::string_view table = bytes.substr(kHeaderBytes, table_bytes);
  if (Crc32(table) != table_crc) {
    return Unexpected("blob_io: " + path + ": section table checksum mismatch");
  }
  ByteReader entries(table);
  for (uint32_t i = 0; i < section_count; ++i) {
    const std::string_view name_field = entries.ReadBytes(16);
    const uint64_t offset = entries.ReadU64();
    const uint64_t size_field = entries.ReadU64();
    const uint32_t crc = entries.ReadU32();
    entries.ReadU32();  // pad
    if (offset > bytes.size() || size_field > bytes.size() - offset) {
      return Unexpected("blob_io: " + path + ": section " + std::to_string(i) +
                        " out of bounds");
    }
    Section section;
    section.name = name_field.substr(0, name_field.find('\0'));
    section.bytes = bytes.substr(offset, size_field);
    section.crc32 = crc;
    blob->sections_.push_back(section);
  }
  return blob;
}

MappedBlob::~MappedBlob() {
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<char*>(data_), size_);
  }
}

const MappedBlob::Section* MappedBlob::Find(std::string_view name) const {
  for (const Section& section : sections_) {
    if (section.name == name) return &section;
  }
  return nullptr;
}

Status MappedBlob::VerifySection(const Section& section) const {
  if (Crc32(section.bytes) != section.crc32) {
    return Status::Error("blob_io: section '" + std::string(section.name) +
                         "' checksum mismatch");
  }
  return Status::Ok();
}

Status MappedBlob::VerifyAll() const {
  for (const Section& section : sections_) {
    if (Status status = VerifySection(section); !status.ok()) return status;
  }
  return Status::Ok();
}

// --- record log --------------------------------------------------------------

Expected<LogContents> ReadLog(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Unexpected("blob_io: cannot open log " + path);
  std::string bytes;
  char buffer[1 << 16];
  while (true) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      ::close(fd);
      return Unexpected("blob_io: cannot read log " + path);
    }
    if (n == 0) break;
    bytes.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);

  // Header: magic u64, format u32, payload_len u32, payload, payload_crc u32.
  ByteReader reader(bytes);
  const uint64_t magic = reader.ReadU64();
  const uint32_t format = reader.ReadU32();
  const uint32_t header_len = reader.ReadU32();
  const std::string_view header_payload = reader.ReadBytes(header_len);
  const uint32_t header_crc = reader.ReadU32();
  if (!reader.ok() || magic != kLogMagic) {
    return Unexpected("blob_io: " + path + " is not a record log");
  }
  if (format != kLogFormatVersion) {
    return Unexpected("blob_io: " + path + ": unsupported log format " +
                      std::to_string(format));
  }
  if (Crc32(header_payload) != header_crc) {
    return Unexpected("blob_io: " + path + ": log header checksum mismatch");
  }

  LogContents contents;
  contents.header_payload = std::string(header_payload);
  contents.durable_bytes = bytes.size() - reader.remaining();
  // Records: len u32, crc u32, payload. Anything torn or corrupt ends the
  // durable prefix -- a crash can only damage the tail of an append-only
  // fsync'd log, so everything before the damage is intact by construction.
  while (reader.remaining() > 0) {
    ByteReader record = reader;  // speculative: only commit intact records
    const uint32_t length = record.ReadU32();
    const uint32_t crc = record.ReadU32();
    const std::string_view payload = record.ReadBytes(length);
    if (!record.ok() || Crc32(payload) != crc) {
      contents.torn_tail = true;
      break;
    }
    contents.records.push_back({std::string(payload)});
    reader = record;
    contents.durable_bytes = bytes.size() - reader.remaining();
  }
  return contents;
}

Expected<LogWriter> LogWriter::Create(const std::string& path,
                                      std::string_view header_payload) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Unexpected("blob_io: cannot create log " + path);
  std::string header;
  AppendU64(&header, kLogMagic);
  AppendU32(&header, kLogFormatVersion);
  AppendU32(&header, static_cast<uint32_t>(header_payload.size()));
  header.append(header_payload);
  AppendU32(&header, Crc32(header_payload));
  if (!FaultedWriteAll(fd, header.data(), header.size()) || ::fsync(fd) != 0) {
    ::close(fd);
    return Unexpected("blob_io: short write starting log " + path);
  }
  return LogWriter(fd);
}

Expected<LogWriter> LogWriter::Resume(const std::string& path,
                                      std::size_t resume_at_bytes) {
  const int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) return Unexpected("blob_io: cannot open log " + path);
  // Drop the torn tail (if any) so appended records start on a clean frame.
  if (::ftruncate(fd, static_cast<off_t>(resume_at_bytes)) != 0 ||
      ::lseek(fd, 0, SEEK_END) < 0) {
    ::close(fd);
    return Unexpected("blob_io: cannot truncate log " + path);
  }
  return LogWriter(fd);
}

LogWriter::LogWriter(LogWriter&& other) noexcept : fd_(other.fd_) {
  other.fd_ = -1;
}

LogWriter& LogWriter::operator=(LogWriter&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

LogWriter::~LogWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Status LogWriter::Append(std::string_view payload, bool sync) {
  Require(fd_ >= 0, "LogWriter::Append: moved-from writer");
  std::string frame;
  frame.reserve(8 + payload.size());
  AppendU32(&frame, static_cast<uint32_t>(payload.size()));
  AppendU32(&frame, Crc32(payload));
  frame.append(payload);
  if (!FaultedWriteAll(fd_, frame.data(), frame.size())) {
    return Status::Error("blob_io: log append failed");
  }
  if (sync && ::fsync(fd_) != 0) {
    return Status::Error("blob_io: log fsync failed");
  }
  return Status::Ok();
}

void ResetFaultInjectionForTesting() { LoadCrashBudget(); }

}  // namespace spanners
