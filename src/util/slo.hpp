/// \file slo.hpp
/// \brief Delay-SLO watchdog for constant-delay enumeration (DESIGN.md §1.14).
///
/// The §2.5 guarantee is that the delay between consecutive results is
/// bounded by a constant number of automaton steps; the profiler
/// (enum.delay_steps / slp.enum.delay_steps) measures it, and this watchdog
/// turns "measured" into "enforced-by-alert": when SPANNERS_SLO_DELAY_STEPS
/// (or SetDelaySloBudgetSteps) sets a budget, every profiled delay is
/// checked against it, and violations count into slo.* metrics and the
/// flight recorder. Budget 0 (the default) disables the check entirely --
/// CheckDelaySlo is then one relaxed load + branch, inside call sites that
/// are already gated on MetricsEnabled().
#pragma once

#include <atomic>
#include <cstdint>

namespace spanners {

namespace slo_detail {
extern std::atomic<uint64_t> g_delay_budget_steps;  ///< 0 = watchdog off
extern std::atomic<uint64_t> g_last_delay_steps;

/// Cold path of CheckDelaySlo (budget set): counts the check into slo.*
/// metrics and, on violation, records excess steps and a flight-recorder
/// event.
void CheckAgainstBudget(uint64_t steps, uint64_t budget);
}  // namespace slo_detail

/// The current per-result delay budget in automaton steps; 0 = off.
/// Initialised once from SPANNERS_SLO_DELAY_STEPS.
uint64_t DelaySloBudgetSteps();

/// Runtime override (store_service --slo-delay-steps, tests).
void SetDelaySloBudgetSteps(uint64_t steps);

/// The most recent delay any enumeration reported, for flight-recorder
/// query events (0 until the first profiled enumeration).
inline uint64_t LastObservedDelaySteps() {
  return slo_detail::g_last_delay_steps.load(std::memory_order_relaxed);
}

/// Checks one profiled enumeration delay against the budget. Call sites sit
/// inside the existing MetricsEnabled() gates next to the delay-profiler
/// Record() calls, so SPANNERS_TRACE=off pays nothing new.
inline void CheckDelaySlo(uint64_t steps) {
  // Store only on change: constant-delay enumeration reports the same value
  // for almost every result, and an unconditional store from N enumeration
  // threads ping-pongs the cacheline (measurable on BM_Cde_UpdateThenQuery).
  if (slo_detail::g_last_delay_steps.load(std::memory_order_relaxed) != steps)
    slo_detail::g_last_delay_steps.store(steps, std::memory_order_relaxed);
  const uint64_t budget =
      slo_detail::g_delay_budget_steps.load(std::memory_order_relaxed);
  if (budget == 0) [[likely]] return;
  slo_detail::CheckAgainstBudget(steps, budget);
}

}  // namespace spanners
