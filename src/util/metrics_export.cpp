#include "util/metrics_export.hpp"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include <unistd.h>

namespace spanners {
namespace {

constexpr std::string_view kPrefix = "spanners_";

bool IsNameChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == ':';
}

void AppendHistogram(std::string& out, const std::string& name,
                     const HistogramStats& stats) {
  out += "# TYPE " + name + " histogram\n";
  char line[160];
  uint64_t cumulative = 0;
  for (std::size_t b = 0; b + 1 < Histogram::kNumBuckets; ++b) {
    if (stats.buckets[b] == 0) continue;
    cumulative += stats.buckets[b];
    std::snprintf(line, sizeof(line), "%s_bucket{le=\"%" PRIu64 "\"} %" PRIu64 "\n",
                  name.c_str(), Histogram::BucketUpperBound(b), cumulative);
    out += line;
  }
  // The last log2 bucket's upper bound is UINT64_MAX, i.e. +Inf for scrapers.
  // A snapshot racing a Record() can leave count lagging the bucket sum (or
  // vice versa); a conformant exposition needs +Inf == _count and buckets
  // monotone, so both report the larger of the two.
  cumulative += stats.buckets[Histogram::kNumBuckets - 1];
  const uint64_t total = cumulative > stats.count ? cumulative : stats.count;
  std::snprintf(line, sizeof(line), "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n",
                name.c_str(), total);
  out += line;
  std::snprintf(line, sizeof(line), "%s_sum %" PRIu64 "\n%s_count %" PRIu64 "\n",
                name.c_str(), stats.sum, name.c_str(), total);
  out += line;
}

}  // namespace

std::string SanitizeMetricName(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  if (!name.empty() && name.front() >= '0' && name.front() <= '9') {
    out += '_';
  }
  for (char c : name) {
    out += IsNameChar(c) ? c : '_';
  }
  return out;
}

std::string EscapeLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c; break;
    }
  }
  return out;
}

std::string RenderOpenMetrics(const MetricsSnapshot& snapshot) {
  std::string out;
  out.reserve(4096);
  char line[160];
  for (const auto& [name, value] : snapshot.counters) {
    const std::string full = std::string(kPrefix) + SanitizeMetricName(name);
    out += "# TYPE " + full + " counter\n";
    std::snprintf(line, sizeof(line), "%s_total %" PRIu64 "\n", full.c_str(),
                  value);
    out += line;
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string full = std::string(kPrefix) + SanitizeMetricName(name);
    out += "# TYPE " + full + " gauge\n";
    std::snprintf(line, sizeof(line), "%s %" PRId64 "\n", full.c_str(), value);
    out += line;
  }
  for (const auto& [name, stats] : snapshot.histograms) {
    AppendHistogram(out, std::string(kPrefix) + SanitizeMetricName(name), stats);
  }
  out += "# EOF\n";
  return out;
}

MetricsSnapshot SnapshotDelta(const MetricsSnapshot& current,
                              const MetricsSnapshot& earlier) {
  MetricsSnapshot delta;
  for (const auto& [name, value] : current.counters) {
    const auto it = earlier.counters.find(name);
    const uint64_t base = it == earlier.counters.end() ? 0 : it->second;
    delta.counters[name] = value >= base ? value - base : 0;
  }
  delta.gauges = current.gauges;
  for (const auto& [name, stats] : current.histograms) {
    const auto it = earlier.histograms.find(name);
    delta.histograms[name] =
        it == earlier.histograms.end() ? stats : stats.Since(it->second);
  }
  return delta;
}

bool WriteMetricsFile(const std::string& path, const std::string& contents) {
  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) return false;
  const bool wrote =
      std::fwrite(contents.data(), 1, contents.size(), file) == contents.size();
  bool ok = wrote && std::fflush(file) == 0 && ::fsync(fileno(file)) == 0;
  ok = (std::fclose(file) == 0) && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

MetricsFileFlusher::MetricsFileFlusher(std::string path,
                                       std::chrono::milliseconds interval)
    : path_(std::move(path)), interval_(interval) {
  thread_ = std::thread([this] { Run(); });
}

MetricsFileFlusher::~MetricsFileFlusher() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  Flush();  // the final state always reaches the file
}

bool MetricsFileFlusher::Flush() {
  return WriteMetricsFile(
      path_, RenderOpenMetrics(MetricsRegistry::Global().Snapshot()));
}

void MetricsFileFlusher::Run() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_) {
    if (cv_.wait_for(lock, interval_, [this] { return stop_; })) break;
    lock.unlock();
    Flush();
    lock.lock();
  }
}

}  // namespace spanners
