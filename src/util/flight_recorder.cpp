#include "util/flight_recorder.hpp"

#include <bit>
#include <cstdio>
#include <sstream>

#include "engine/planner.hpp"
#include "util/metrics.hpp"

namespace spanners {
namespace {

/// Payload packing: word 0 carries every small field, words 1..4 the wide
/// ones. The layout is process-internal (never serialized), so it can change
/// freely as long as Pack and Unpack agree.
std::array<uint64_t, 5> Pack(const FlightEvent& event) {
  const uint64_t tags = static_cast<uint64_t>(event.kind) |
                        (static_cast<uint64_t>(event.decision) << 8) |
                        (static_cast<uint64_t>(event.plan) << 16) |
                        (static_cast<uint64_t>(event.cache_hit ? 1 : 0) << 24) |
                        (static_cast<uint64_t>(event.feature_bucket) << 32);
  return {tags, event.timestamp_ns, event.duration_ns, event.delay_steps,
          event.detail};
}

FlightEvent Unpack(const std::array<uint64_t, 5>& words) {
  FlightEvent event;
  event.kind = static_cast<FlightEvent::Kind>(words[0] & 0xff);
  event.decision = static_cast<FlightEvent::Decision>((words[0] >> 8) & 0xff);
  event.plan = static_cast<uint8_t>((words[0] >> 16) & 0xff);
  event.cache_hit = ((words[0] >> 24) & 0x1) != 0;
  event.feature_bucket = static_cast<uint32_t>(words[0] >> 32);
  event.timestamp_ns = words[1];
  event.duration_ns = words[2];
  event.delay_steps = words[3];
  event.detail = words[4];
  return event;
}

std::string FormatDurationNs(uint64_t ns) {
  char buffer[32];
  if (ns >= 1000000) {
    std::snprintf(buffer, sizeof(buffer), "%.1fms", static_cast<double>(ns) / 1e6);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.1fus", static_cast<double>(ns) / 1e3);
  }
  return buffer;
}

}  // namespace

std::string_view FlightEventKindName(FlightEvent::Kind kind) {
  switch (kind) {
    case FlightEvent::Kind::kQuery: return "query";
    case FlightEvent::Kind::kCommit: return "commit";
    case FlightEvent::Kind::kGc: return "gc";
    case FlightEvent::Kind::kSloViolation: return "slo-violation";
  }
  return "unknown";
}

std::string_view FlightDecisionName(FlightEvent::Decision decision) {
  switch (decision) {
    case FlightEvent::Decision::kStatic: return "static";
    case FlightEvent::Decision::kAdaptive: return "adaptive";
    case FlightEvent::Decision::kForced: return "forced";
    case FlightEvent::Decision::kCached: return "cached";
    case FlightEvent::Decision::kStore: return "store";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : slots_(std::bit_ceil(capacity < 2 ? std::size_t{2} : capacity)) {}

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder();  // never destroyed
  return *recorder;
}

void FlightRecorder::Record(FlightEvent event) {
  if (event.timestamp_ns == 0) event.timestamp_ns = NowNanos();
  const uint64_t ticket = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket & (slots_.size() - 1)];
  // Seqlock write: odd marks the slot torn while the payload lands. A writer
  // lapped a full ring ahead can race this slot; readers detect the overlap
  // because the two seq reads then disagree (or read an odd value).
  slot.seq.store(2 * ticket + 1, std::memory_order_release);
  const std::array<uint64_t, 5> words = Pack(event);
  for (std::size_t w = 0; w < words.size(); ++w) {
    slot.words[w].store(words[w], std::memory_order_relaxed);
  }
  slot.seq.store(2 * ticket + 2, std::memory_order_release);
}

std::vector<FlightEvent> FlightRecorder::Dump(std::size_t max_events) const {
  const uint64_t end = next_.load(std::memory_order_acquire);
  uint64_t window = slots_.size();
  if (window > end) window = end;
  if (window > max_events) window = max_events;

  std::vector<FlightEvent> events;
  events.reserve(window);
  for (uint64_t ticket = end - window; ticket < end; ++ticket) {
    const Slot& slot = slots_[ticket & (slots_.size() - 1)];
    const uint64_t before = slot.seq.load(std::memory_order_acquire);
    if (before != 2 * ticket + 2) continue;  // torn or already overwritten
    std::array<uint64_t, 5> words;
    for (std::size_t w = 0; w < words.size(); ++w) {
      words[w] = slot.words[w].load(std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != before) continue;
    events.push_back(Unpack(words));
  }
  return events;
}

std::string FlightRecorder::ToString(std::size_t max_events) const {
  std::ostringstream os;
  for (const FlightEvent& event : Dump(max_events)) {
    os << "[" << event.timestamp_ns << "] " << FlightEventKindName(event.kind);
    switch (event.kind) {
      case FlightEvent::Kind::kQuery:
        os << " plan=" << PlanKindName(static_cast<PlanKind>(event.plan))
           << " decision=" << FlightDecisionName(event.decision) << " bucket=0x"
           << std::hex << event.feature_bucket << std::dec
           << " dur=" << FormatDurationNs(event.duration_ns)
           << " delay=" << event.delay_steps
           << " cache=" << (event.cache_hit ? "hit" : "miss");
        break;
      case FlightEvent::Kind::kCommit:
        os << " version=" << event.detail
           << " dur=" << FormatDurationNs(event.duration_ns);
        break;
      case FlightEvent::Kind::kGc:
        os << " reclaimed=" << event.detail
           << " pause=" << FormatDurationNs(event.duration_ns);
        break;
      case FlightEvent::Kind::kSloViolation:
        os << " delay=" << event.delay_steps << " excess=" << event.detail;
        break;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace spanners
