#include "util/metrics.hpp"

#include <bit>
#include <chrono>
#include <cstdlib>
#include <sstream>

namespace spanners {

namespace metrics_detail {
namespace {

uint8_t InitialTraceLevel() {
  if (const char* env = std::getenv("SPANNERS_TRACE"); env != nullptr && *env != '\0') {
    TraceLevel parsed;
    if (ParseTraceLevel(env, &parsed)) return static_cast<uint8_t>(parsed);
  }
  return static_cast<uint8_t>(TraceLevel::kCounters);
}

}  // namespace

std::atomic<uint8_t> g_trace_level{InitialTraceLevel()};

thread_local constinit std::size_t t_counter_shard = 0;

}  // namespace metrics_detail

void SetTraceLevel(TraceLevel level) {
  metrics_detail::g_trace_level.store(static_cast<uint8_t>(level),
                                      std::memory_order_relaxed);
}

bool ParseTraceLevel(std::string_view name, TraceLevel* out) {
  for (TraceLevel level : {TraceLevel::kOff, TraceLevel::kCounters, TraceLevel::kSpans}) {
    if (name == TraceLevelName(level)) {
      *out = level;
      return true;
    }
  }
  return false;
}

std::string_view TraceLevelName(TraceLevel level) {
  switch (level) {
    case TraceLevel::kOff: return "off";
    case TraceLevel::kCounters: return "counters";
    case TraceLevel::kSpans: return "spans";
  }
  return "unknown";
}

std::size_t Counter::AssignShardIndex() {
  static std::atomic<std::size_t> next{0};
  const std::size_t index = next.fetch_add(1, std::memory_order_relaxed) % kShards;
  metrics_detail::t_counter_shard = index + 1;
  return index;
}

std::size_t Histogram::BucketOf(uint64_t value) {
  return static_cast<std::size_t>(std::bit_width(value));
}

uint64_t Histogram::BucketUpperBound(std::size_t b) {
  if (b >= 64) return UINT64_MAX;
  return (uint64_t{1} << b) - 1;
}

uint64_t HistogramStats::Quantile(double q) const {
  return Histogram::BucketUpperBound(QuantileBucket(q));
}

std::size_t HistogramStats::QuantileBucket(double q) const {
  if (count == 0) return 0;
  // Smallest bucket whose cumulative count reaches q * count (>= 1 sample).
  const double target_real = q * static_cast<double>(count);
  uint64_t target = static_cast<uint64_t>(target_real);
  if (static_cast<double>(target) < target_real) ++target;
  if (target == 0) target = 1;
  uint64_t cumulative = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    cumulative += buckets[b];
    if (cumulative >= target) return b;
  }
  return buckets.size() - 1;
}

HistogramStats HistogramStats::Since(const HistogramStats& earlier) const {
  HistogramStats window;
  window.count = count - earlier.count;
  window.sum = sum - earlier.sum;
  window.max = max;  // cumulative; see header
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    window.buckets[b] = buckets[b] - earlier.buckets[b];
  }
  return window;
}

uint64_t MetricsSnapshot::counter(const std::string& name) const {
  auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

std::string MetricsSnapshot::ToString() const {
  std::ostringstream os;
  for (const auto& [name, value] : counters) {
    os << "counter " << name << " " << value << "\n";
  }
  for (const auto& [name, value] : gauges) {
    os << "gauge " << name << " " << value << "\n";
  }
  for (const auto& [name, stats] : histograms) {
    os << "histogram " << name << " count=" << stats.count << " sum=" << stats.sum
       << " mean=" << stats.mean() << " p50=" << stats.p50() << " p95=" << stats.p95()
       << " p99=" << stats.p99() << " max=" << stats.max << "\n";
  }
  return os.str();
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>()).first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace(name, counter->Value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace(name, gauge->Value());
  }
  for (const auto& [name, histogram] : histograms_) {
    HistogramStats stats;
    stats.count = histogram->count();
    stats.sum = histogram->sum();
    stats.max = histogram->max();
    for (std::size_t b = 0; b < Histogram::kNumBuckets; ++b) {
      stats.buckets[b] = histogram->bucket(b);
    }
    snapshot.histograms.emplace(name, stats);
  }
  return snapshot;
}

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace spanners
