#include "util/random.hpp"

#include "util/common.hpp"

namespace spanners {

uint64_t Rng::Next() {
  // xorshift64* with SplitMix64-style output mixing.
  state_ ^= state_ >> 12;
  state_ ^= state_ << 25;
  state_ ^= state_ >> 27;
  return state_ * 0x2545F4914F6CDD1Dull;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  Require(bound > 0, "Rng::NextBelow: bound must be positive");
  return Next() % bound;
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

std::string RandomString(Rng& rng, std::string_view alphabet, std::size_t length) {
  Require(!alphabet.empty(), "RandomString: empty alphabet");
  std::string out;
  out.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    out.push_back(alphabet[rng.NextBelow(alphabet.size())]);
  }
  return out;
}

std::string DnaLike(Rng& rng, std::size_t length, std::size_t pool_size,
                    std::size_t block_length) {
  Require(pool_size > 0 && block_length > 0, "DnaLike: pool/block must be positive");
  std::vector<std::string> pool;
  pool.reserve(pool_size);
  for (std::size_t i = 0; i < pool_size; ++i) {
    pool.push_back(RandomString(rng, "acgt", block_length));
  }
  std::string out;
  out.reserve(length + block_length);
  while (out.size() < length) {
    out += pool[rng.NextBelow(pool.size())];
  }
  out.resize(length);
  return out;
}

std::string SyntheticLog(Rng& rng, std::size_t lines) {
  static const char* kPaths[] = {"index", "login", "cart", "search", "api/v1/items",
                                 "static/app.js", "img/logo.png", "checkout"};
  static const char* kStatus[] = {"200", "200", "200", "304", "404", "500"};
  std::string out;
  out.reserve(lines * 64);
  for (std::size_t i = 0; i < lines; ++i) {
    out += "host-";
    out += std::to_string(rng.NextBelow(16));
    out += " user-";
    out += std::to_string(rng.NextBelow(32));
    out += " GET /";
    out += kPaths[rng.NextBelow(8)];
    out += " status=";
    out += kStatus[rng.NextBelow(6)];
    out += " size=";
    out += std::to_string(rng.NextBelow(9000) + 100);
    out += "\n";
  }
  return out;
}

std::string BoilerplateText(Rng& rng, std::size_t paragraphs, double noise) {
  static const std::string kTemplate =
      "the quick brown fox jumps over the lazy dog while the curious cat "
      "watches from the warm windowsill and the rain keeps falling softly ";
  static const std::string kLetters = "abcdefghijklmnopqrstuvwxyz";
  std::string out;
  out.reserve(paragraphs * kTemplate.size());
  for (std::size_t p = 0; p < paragraphs; ++p) {
    std::string paragraph = kTemplate;
    for (char& c : paragraph) {
      if (rng.NextDouble() < noise) c = kLetters[rng.NextBelow(kLetters.size())];
    }
    out += paragraph;
  }
  return out;
}

}  // namespace spanners
