#include "util/string_hash.hpp"

#include "util/common.hpp"

namespace spanners {

uint64_t PrefixHash::MulMod(uint64_t a, uint64_t b) {
  const __uint128_t product = static_cast<__uint128_t>(a) * b;
  uint64_t lo = static_cast<uint64_t>(product & kMod);
  uint64_t hi = static_cast<uint64_t>(product >> 61);
  uint64_t sum = lo + hi;
  if (sum >= kMod) sum -= kMod;
  return sum;
}

PrefixHash::PrefixHash(std::string_view text) : length_(text.size()) {
  prefix1_.resize(length_ + 1, 0);
  prefix2_.resize(length_ + 1, 0);
  power1_.resize(length_ + 1, 1);
  power2_.resize(length_ + 1, 1);
  for (std::size_t i = 0; i < length_; ++i) {
    const uint64_t c = static_cast<uint8_t>(text[i]) + 1;
    prefix1_[i + 1] = (MulMod(prefix1_[i], kBase1) + c) % kMod;
    prefix2_[i + 1] = (MulMod(prefix2_[i], kBase2) + c) % kMod;
    power1_[i + 1] = MulMod(power1_[i], kBase1);
    power2_[i + 1] = MulMod(power2_[i], kBase2);
  }
}

std::pair<uint64_t, uint64_t> PrefixHash::HashOf(std::size_t begin, std::size_t len) const {
  // Overflow-safe form of begin + len <= length(): the naive sum can wrap
  // around on adversarial inputs and silently read stale prefix_/power_
  // entries out of range instead of failing the precondition.
  Require(len <= length_ && begin <= length_ - len,
          "PrefixHash::HashOf: range out of bounds");
  const uint64_t shifted1 = MulMod(prefix1_[begin], power1_[len]);
  const uint64_t h1 = (prefix1_[begin + len] + kMod - shifted1) % kMod;
  const uint64_t shifted2 = MulMod(prefix2_[begin], power2_[len]);
  const uint64_t h2 = (prefix2_[begin + len] + kMod - shifted2) % kMod;
  return {h1, h2};
}

bool PrefixHash::FactorsEqual(std::size_t b1, std::size_t b2, std::size_t len) const {
  if (b1 == b2) {
    // Still enforce the range precondition on the shortcut path.
    Require(len <= length_ && b1 <= length_ - len,
            "PrefixHash::FactorsEqual: range out of bounds");
    return true;
  }
  return HashOf(b1, len) == HashOf(b2, len);
}

bool CrossFactorsEqual(const PrefixHash& a, std::size_t a_begin, const PrefixHash& b,
                       std::size_t b_begin, std::size_t len) {
  return a.HashOf(a_begin, len) == b.HashOf(b_begin, len);
}

}  // namespace spanners
