#include "util/slo.hpp"

#include <cstdlib>
#include <string>

#include "util/flight_recorder.hpp"
#include "util/metrics.hpp"

namespace spanners {
namespace slo_detail {

namespace {

uint64_t BudgetFromEnv() {
  const char* env = std::getenv("SPANNERS_SLO_DELAY_STEPS");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(env, &end, 10);
  if (end == nullptr || *end != '\0') return 0;  // malformed: watchdog off
  return static_cast<uint64_t>(parsed);
}

struct SloMetrics {
  Counter& checks = MetricsRegistry::Global().GetCounter("slo.delay.checks");
  Counter& violations =
      MetricsRegistry::Global().GetCounter("slo.delay.violations");
  Histogram& excess_steps =
      MetricsRegistry::Global().GetHistogram("slo.delay.excess_steps");

  static SloMetrics& Get() {
    static SloMetrics metrics;
    return metrics;
  }
};

}  // namespace

std::atomic<uint64_t> g_delay_budget_steps{BudgetFromEnv()};
std::atomic<uint64_t> g_last_delay_steps{0};

void CheckAgainstBudget(uint64_t steps, uint64_t budget) {
  SloMetrics& metrics = SloMetrics::Get();
  metrics.checks.Increment();
  if (steps <= budget) return;
  const uint64_t excess = steps - budget;
  metrics.violations.Increment();
  metrics.excess_steps.Record(excess);
  FlightEvent event;
  event.kind = FlightEvent::Kind::kSloViolation;
  event.delay_steps = steps;
  event.detail = excess;
  FlightRecorder::Global().Record(event);
}

}  // namespace slo_detail

uint64_t DelaySloBudgetSteps() {
  return slo_detail::g_delay_budget_steps.load(std::memory_order_relaxed);
}

void SetDelaySloBudgetSteps(uint64_t steps) {
  slo_detail::g_delay_budget_steps.store(steps, std::memory_order_relaxed);
}

}  // namespace spanners
