#include "util/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/metrics.hpp"

namespace spanners {
namespace {

/// pool.utilization = pool.busy_ns / (pool.batch_ns sum * num_threads);
/// queue_depth is a gauge holding the item count of the in-flight batch.
struct PoolMetrics {
  Counter& batches;
  Counter& items;
  Counter& inline_batches;
  Counter& busy_ns;
  Gauge& queue_depth;
  Histogram& batch_ns;

  static PoolMetrics& Get() {
    MetricsRegistry& registry = MetricsRegistry::Global();
    static PoolMetrics* metrics = new PoolMetrics{
        registry.GetCounter("pool.batches"),
        registry.GetCounter("pool.items"),
        registry.GetCounter("pool.inline_batches"),
        registry.GetCounter("pool.busy_ns"),
        registry.GetGauge("pool.queue_depth"),
        registry.GetHistogram("pool.batch_ns"),
    };
    return *metrics;
  }
};

}  // namespace

std::size_t ThreadPool::DefaultThreadCount() {
  // Resolved once per process: std::thread::hardware_concurrency() is a
  // sysconf call costing over a microsecond, and this default is read in
  // every matcher/evaluator constructor (ISSUE 6 hot-path regression).
  static const std::size_t count = [] {
    if (const char* env = std::getenv("SPANNERS_THREADS")) {
      const long value = std::strtol(env, nullptr, 10);
      if (value > 0) return static_cast<std::size_t>(value);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? std::size_t{1} : static_cast<std::size_t>(hw);
  }();
  return count;
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t extra = num_threads > 1 ? num_threads - 1 : 0;
  workers_.reserve(extra);
  for (std::size_t i = 0; i < extra; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::RunBatch() {
  // Per-thread busy time: summed over all participants it gives the pool's
  // utilization relative to batch wall time * thread count.
  const bool metrics_on = MetricsEnabled();
  const uint64_t run_start = metrics_on ? NowNanos() : 0;
  // Claim contiguous chunks under the mutex, run them outside of it.
  std::unique_lock<std::mutex> lock(mutex_);
  while (next_index_ < batch_.end) {
    const std::size_t start = next_index_;
    const std::size_t stop = std::min(batch_.end, start + batch_.chunk);
    next_index_ = stop;
    const std::function<void(std::size_t)>* fn = batch_.fn;
    lock.unlock();
    for (std::size_t i = start; i < stop; ++i) (*fn)(i);
    lock.lock();
  }
  if (metrics_on) {
    lock.unlock();
    PoolMetrics::Get().busy_ns.Add(NowNanos() - run_start);
  }
}

void ThreadPool::WorkerLoop() {
  std::uint64_t seen = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
    }
    RunBatch();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--pending_ == 0) done_.notify_one();
    }
  }
}

void ThreadPool::ParallelFor(std::size_t begin, std::size_t end,
                             const std::function<void(std::size_t)>& fn) {
  const std::size_t count = end > begin ? end - begin : 0;
  ParallelForChunked(begin, end,
                     std::max<std::size_t>(1, count / (num_threads() * 4)), fn);
}

void ThreadPool::ParallelForChunked(std::size_t begin, std::size_t end,
                                    std::size_t chunk,
                                    const std::function<void(std::size_t)>& fn) {
  if (end <= begin) return;
  const std::size_t count = end - begin;
  const bool metrics_on = MetricsEnabled();
  if (workers_.empty() || count == 1) {
    if (metrics_on) {
      PoolMetrics& metrics = PoolMetrics::Get();
      metrics.inline_batches.Increment();
      metrics.items.Add(count);
      const uint64_t start = NowNanos();
      for (std::size_t i = begin; i < end; ++i) fn(i);
      const uint64_t elapsed = NowNanos() - start;
      metrics.busy_ns.Add(elapsed);
      metrics.batch_ns.Record(elapsed);
      return;
    }
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  const uint64_t batch_start = metrics_on ? NowNanos() : 0;
  std::lock_guard<std::mutex> serialize(serialize_);
  if (metrics_on) {
    PoolMetrics& metrics = PoolMetrics::Get();
    metrics.batches.Increment();
    metrics.items.Add(count);
    metrics.queue_depth.Set(static_cast<int64_t>(count));
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    batch_.begin = begin;
    batch_.end = end;
    batch_.chunk = std::max<std::size_t>(1, chunk);
    batch_.fn = &fn;
    next_index_ = begin;
    pending_ = workers_.size();
    ++generation_;
  }
  wake_.notify_all();
  RunBatch();  // the calling thread participates
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [&] { return pending_ == 0; });
  }
  if (metrics_on) {
    PoolMetrics& metrics = PoolMetrics::Get();
    metrics.queue_depth.Set(0);
    metrics.batch_ns.Record(NowNanos() - batch_start);
  }
}

}  // namespace spanners
