#include "util/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>

namespace spanners {

std::size_t ThreadPool::DefaultThreadCount() {
  if (const char* env = std::getenv("SPANNERS_THREADS")) {
    const long value = std::strtol(env, nullptr, 10);
    if (value > 0) return static_cast<std::size_t>(value);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t extra = num_threads > 1 ? num_threads - 1 : 0;
  workers_.reserve(extra);
  for (std::size_t i = 0; i < extra; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::RunBatch() {
  // Claim contiguous chunks under the mutex, run them outside of it.
  std::unique_lock<std::mutex> lock(mutex_);
  while (next_index_ < batch_.end) {
    const std::size_t start = next_index_;
    const std::size_t stop = std::min(batch_.end, start + batch_.chunk);
    next_index_ = stop;
    const std::function<void(std::size_t)>* fn = batch_.fn;
    lock.unlock();
    for (std::size_t i = start; i < stop; ++i) (*fn)(i);
    lock.lock();
  }
}

void ThreadPool::WorkerLoop() {
  std::uint64_t seen = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
    }
    RunBatch();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--pending_ == 0) done_.notify_one();
    }
  }
}

void ThreadPool::ParallelFor(std::size_t begin, std::size_t end,
                             const std::function<void(std::size_t)>& fn) {
  if (end <= begin) return;
  const std::size_t count = end - begin;
  if (workers_.empty() || count == 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  std::lock_guard<std::mutex> serialize(serialize_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    batch_.begin = begin;
    batch_.end = end;
    batch_.chunk = std::max<std::size_t>(1, count / (num_threads() * 4));
    batch_.fn = &fn;
    next_index_ = begin;
    pending_ = workers_.size();
    ++generation_;
  }
  wake_.notify_all();
  RunBatch();  // the calling thread participates
  std::unique_lock<std::mutex> lock(mutex_);
  done_.wait(lock, [&] { return pending_ == 0; });
}

}  // namespace spanners
