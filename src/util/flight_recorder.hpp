/// \file flight_recorder.hpp
/// \brief Fixed-size lock-free ring of structured per-query events
/// (DESIGN.md §1.14).
///
/// The metrics registry (util/metrics.hpp) aggregates; the flight recorder
/// remembers *individual* recent events -- the last few thousand queries,
/// commits, GC pauses, and SLO violations -- so a serving incident can be
/// reconstructed after the fact without unbounded trace files. It is the
/// "what just happened" complement to the registry's "how much happened".
///
/// Cost model: Record() is one fetch_add to claim a slot plus a handful of
/// relaxed atomic stores bracketed by release stores of the slot's sequence
/// word -- no locks, no allocation, wait-free for writers. Dump() reads
/// slots with the classic seqlock protocol (sequence, payload, sequence
/// again) and simply discards any slot a concurrent writer was mid-flight
/// in, so readers never block writers and TSan sees only atomics
/// (tests/flight_recorder_test.cpp runs the race under TSan).
///
/// Call sites gate on MetricsEnabled(): with SPANNERS_TRACE=off the recorder
/// stays untouched and the hot path pays only the existing load + branch.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace spanners {

/// One structured event. All fields are plain values so a record packs into
/// a fixed number of atomic words (see FlightRecorder::Slot).
struct FlightEvent {
  /// What happened.
  enum class Kind : uint8_t {
    kQuery = 0,         ///< one evaluation (engine or store path)
    kCommit = 1,        ///< a store commit published a version
    kGc = 2,            ///< a generational compaction ran
    kSloViolation = 3,  ///< an enumeration delay exceeded the SLO budget
  };

  /// How the plan of a kQuery event was decided.
  enum class Decision : uint8_t {
    kStatic = 0,    ///< rule list (cold start or adaptive disabled)
    kAdaptive = 1,  ///< cost-model ranking (engine/cost_model.hpp)
    kForced = 2,    ///< SPANNERS_PLAN / set_force_plan
    kCached = 3,    ///< plan-cache hit of an earlier static decision
    kStore = 4,     ///< store prepared-state path (no planner involved)
  };

  Kind kind = Kind::kQuery;
  Decision decision = Decision::kStatic;
  uint8_t plan = 0;          ///< PlanKind of a kQuery event
  bool cache_hit = false;    ///< plan cache (engine) / prepared cache (store)
  uint32_t feature_bucket = 0;  ///< packed cost-model bucket (0 = none)
  uint64_t timestamp_ns = 0;    ///< NowNanos() at record time
  uint64_t duration_ns = 0;     ///< eval / commit / GC-pause wall time
  uint64_t delay_steps = 0;     ///< last observed enumeration delay (util/slo.hpp)
  uint64_t detail = 0;  ///< kind-specific: version (commit), reclaimed nodes
                        ///< (gc), excess steps (slo violation)
};

/// Short lower-case names for reports ("query", "commit", ...).
std::string_view FlightEventKindName(FlightEvent::Kind kind);
std::string_view FlightDecisionName(FlightEvent::Decision decision);

/// The ring. Capacity is rounded up to a power of two; the default keeps
/// the canonical "last 4096 queries" view in ~256 KiB.
class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// The process-wide recorder every engine/store site records into.
  static FlightRecorder& Global();

  /// Appends \p event, overwriting the oldest slot once full. Wait-free;
  /// safe from any thread. timestamp_ns is stamped here when left 0.
  void Record(FlightEvent event);

  /// The most recent events, oldest first, at most \p max_events (and never
  /// more than the capacity). Slots a concurrent writer is mid-flight in are
  /// skipped, so a dump racing heavy traffic may return slightly fewer
  /// events than recorded -- by design (never blocks, never tears).
  std::vector<FlightEvent> Dump(std::size_t max_events = kDefaultCapacity) const;

  /// Human-readable dump, one event per line, oldest first:
  ///   [<timestamp_ns>] query plan=slp-matrix decision=adaptive bucket=0x...
  ///       dur=12.3us delay=17 cache=hit
  std::string ToString(std::size_t max_events = kDefaultCapacity) const;

  /// Total events ever recorded (monotonic; may exceed capacity).
  uint64_t recorded() const { return next_.load(std::memory_order_relaxed); }

  std::size_t capacity() const { return slots_.size(); }

 private:
  /// One seqlock-protected record. seq holds 2*ticket+1 while the writer of
  /// ticket is storing the payload and 2*ticket+2 once it is complete, so a
  /// reader can tell torn, stale, and clean slots apart with two loads.
  struct Slot {
    std::atomic<uint64_t> seq{0};
    std::array<std::atomic<uint64_t>, 5> words{};
  };

  std::vector<Slot> slots_;
  std::atomic<uint64_t> next_{0};  ///< ticket counter; slot = ticket & mask
};

}  // namespace spanners
