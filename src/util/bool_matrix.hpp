/// \file bool_matrix.hpp
/// \brief Bit-packed square Boolean matrices with fast Boolean product.
///
/// Used for the classical "NFA acceptance over SLP-compressed strings"
/// algorithm (paper, Section 4.2): for every SLP node A one computes a
/// Boolean matrix M_A over the NFA's states with M_A[p][q] = true iff state q
/// is reachable from state p by reading the string derived by A. For an inner
/// node A with children B and C, M_A = M_B * M_C under Boolean matrix
/// multiplication, giving the O(|S| * n^3) bound (here with a 64x constant
/// factor improvement from bit-packing).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace spanners {

/// A dense n-by-n Boolean matrix stored as bit-packed rows.
class BoolMatrix {
 public:
  BoolMatrix() : size_(0), words_per_row_(0) {}

  /// Creates an all-zero n-by-n matrix.
  explicit BoolMatrix(std::size_t n)
      : size_(n), words_per_row_((n + 63) / 64), bits_(n * words_per_row_, 0) {}

  /// Returns the identity matrix of dimension n.
  static BoolMatrix Identity(std::size_t n);

  /// Number of rows (== number of columns).
  std::size_t size() const { return size_; }

  /// Reads entry (row, col).
  bool Get(std::size_t row, std::size_t col) const {
    return (bits_[row * words_per_row_ + (col >> 6)] >> (col & 63)) & 1u;
  }

  /// Sets entry (row, col) to \p value.
  void Set(std::size_t row, std::size_t col, bool value = true) {
    uint64_t& word = bits_[row * words_per_row_ + (col >> 6)];
    const uint64_t mask = uint64_t{1} << (col & 63);
    if (value) {
      word |= mask;
    } else {
      word &= ~mask;
    }
  }

  /// Boolean matrix product: (this * other)[p][q] = OR_r this[p][r] AND
  /// other[r][q]. Runs in O(n^3 / 64) word operations.
  BoolMatrix Multiply(const BoolMatrix& other) const;

  /// Elementwise OR.
  BoolMatrix Or(const BoolMatrix& other) const;

  /// Returns true iff any entry in \p row is set.
  bool RowAny(std::size_t row) const;

  /// Returns true iff entry-wise equal.
  bool operator==(const BoolMatrix& other) const {
    return size_ == other.size_ && bits_ == other.bits_;
  }

  /// Reflexive-transitive closure (Warshall, bit-packed): entry (p,q) is set
  /// iff q is reachable from p via edges of this matrix (including p == q).
  BoolMatrix Closure() const;

  /// Multiplies a bit-packed row vector from the left: result[q] =
  /// OR_p vec[p] AND this[p][q]. \p vec must contain size() bits.
  std::vector<uint64_t> VecMultiply(const std::vector<uint64_t>& vec) const;

  /// Debug rendering as rows of '0'/'1'.
  std::string ToString() const;

 private:
  std::size_t size_;
  std::size_t words_per_row_;
  std::vector<uint64_t> bits_;
};

}  // namespace spanners
