/// \file bool_matrix.hpp
/// \brief Bit-packed square Boolean matrices with fast Boolean product.
///
/// Used for the classical "NFA acceptance over SLP-compressed strings"
/// algorithm (paper, Section 4.2): for every SLP node A one computes a
/// Boolean matrix M_A over the NFA's states with M_A[p][q] = true iff state q
/// is reachable from state p by reading the string derived by A. For an inner
/// node A with children B and C, M_A = M_B * M_C under Boolean matrix
/// multiplication, giving the O(|S| * n^3) bound (here with a 64x constant
/// factor improvement from bit-packing).
///
/// Three product kernels are provided:
///  * kSimd (default): the blocked kernel below with the inner AND-reduce
///    vectorized -- AVX2 on x86-64 (runtime-dispatched via
///    __builtin_cpu_supports), NEON on aarch64, and an unrolled portable
///    uint64 loop elsewhere. Falls back to the same sparse-rows delegation
///    as kBlocked for sparse left operands.
///  * kBlocked: transposes the right operand once, then computes each
///    output bit as a scalar word-wise AND-reduce over two contiguous
///    bit-rows, walking the output in row/column blocks sized to stay
///    L1-resident. Deterministic access pattern, no per-bit branching on
///    the input. When the left operand is sparse enough that a full scan
///    cannot pay off (measured by CountOnes against the n^2 scan floor),
///    this kernel delegates to the sparse-rows loop -- small NFA transition
///    matrices hit this path almost always.
///  * kSparseRows: the original kernel -- for every set bit of a left row,
///    OR the corresponding right row into the output row. Wins when the left
///    operand is very sparse; kept behind SetMultiplyKernel for comparison.
/// All kernels are exact and bit-identical; tests sweep them against each
/// other (tests/util_test.cpp, tests/differential_test.cpp). None of the
/// kernels records metrics or checks trace gates: the inner loops are
/// instrumentation-free by construction (ISSUE 6), observability lives in
/// the callers (slp_nfa.cpp / slp_enum.cpp fill loops).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace spanners {

/// A dense n-by-n Boolean matrix stored as bit-packed rows.
class BoolMatrix {
 public:
  /// Selects the implementation used by Multiply / MultiplyInto.
  enum class MultiplyKernel : uint8_t {
    kBlocked,     ///< transpose + blocked scalar AND-reduce
    kSparseRows,  ///< row-scatter kernel (the pre-parallel implementation)
    kSimd,        ///< blocked kernel with vectorized AND-reduce (the default)
  };

  BoolMatrix() : size_(0), words_per_row_(0) {}

  /// Creates an all-zero n-by-n matrix.
  explicit BoolMatrix(std::size_t n)
      : size_(n), words_per_row_((n + 63) / 64), bits_(n * words_per_row_, 0) {}

  /// Returns the identity matrix of dimension n.
  static BoolMatrix Identity(std::size_t n);

  /// Number of rows (== number of columns).
  std::size_t size() const { return size_; }

  /// Reads entry (row, col).
  bool Get(std::size_t row, std::size_t col) const {
    return (bits_[row * words_per_row_ + (col >> 6)] >> (col & 63)) & 1u;
  }

  /// Sets entry (row, col) to \p value.
  void Set(std::size_t row, std::size_t col, bool value = true) {
    uint64_t& word = bits_[row * words_per_row_ + (col >> 6)];
    const uint64_t mask = uint64_t{1} << (col & 63);
    if (value) {
      word |= mask;
    } else {
      word &= ~mask;
    }
  }

  /// Boolean matrix product: (this * other)[p][q] = OR_r this[p][r] AND
  /// other[r][q]. Runs in O(n^3 / 64) word operations with the kernel
  /// selected by SetMultiplyKernel.
  BoolMatrix Multiply(const BoolMatrix& other) const;

  /// Product into a caller-owned result (reuses its allocation when the
  /// dimension already matches). \p result must not alias this or \p other.
  void MultiplyInto(const BoolMatrix& other, BoolMatrix* result) const;

  /// Blocked product with the transpose of the right operand precomputed by
  /// the caller (amortises the transpose when one right operand is reused).
  /// \p result must not alias this or \p other_transposed.
  void MultiplyTransposedInto(const BoolMatrix& other_transposed,
                              BoolMatrix* result) const;

  /// The transposed matrix.
  BoolMatrix Transposed() const;

  /// Transpose into a caller-owned scratch matrix (reuses its allocation).
  void TransposeInto(BoolMatrix* result) const;

  /// Elementwise OR.
  BoolMatrix Or(const BoolMatrix& other) const;

  /// Returns true iff any entry in \p row is set.
  bool RowAny(std::size_t row) const;

  /// Returns true iff entry-wise equal.
  bool operator==(const BoolMatrix& other) const {
    return size_ == other.size_ && bits_ == other.bits_;
  }

  /// Reflexive-transitive closure (Warshall, bit-packed): entry (p,q) is set
  /// iff q is reachable from p via edges of this matrix (including p == q).
  BoolMatrix Closure() const;

  /// Multiplies a bit-packed row vector from the left: result[q] =
  /// OR_p vec[p] AND this[p][q]. \p vec must contain size() bits.
  std::vector<uint64_t> VecMultiply(const std::vector<uint64_t>& vec) const;

  /// Number of set entries (population count over all rows).
  std::size_t CountOnes() const;

  /// Debug rendering as rows of '0'/'1'.
  std::string ToString() const;

  /// Process-wide kernel switch (read at every Multiply/MultiplyInto call;
  /// set it before spawning preprocessing threads, not concurrently with
  /// them). Also settable via the environment variable
  /// SPANNERS_MM_KERNEL=simd|blocked|sparse (read once at startup).
  static void SetMultiplyKernel(MultiplyKernel kernel);
  static MultiplyKernel multiply_kernel();

  /// The SIMD backend the kSimd kernel dispatches to on this machine:
  /// "avx2", "neon", or "portable" (resolved once at startup).
  static const char* SimdBackendName();

 private:
  void MultiplySparseInto(const BoolMatrix& other, BoolMatrix* result) const;

  std::size_t size_;
  std::size_t words_per_row_;
  std::vector<uint64_t> bits_;
};

}  // namespace spanners
