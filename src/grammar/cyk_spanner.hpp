/// \file cyk_spanner.hpp
/// \brief Context-free document spanners / extraction grammars ([31]; §2.1).
///
/// A context-free spanner is given by a CFG whose language is a set of
/// subword-marked words; its semantics is the same declarative [[L]] as for
/// regular spanners, with L context-free instead of regular. Evaluation
/// runs a CYK-style derivability fixpoint over document factors (markers
/// consume no characters) for pruning, then enumerates derivations to
/// collect marker positions. Runs with invalid marker usage are ignored,
/// mirroring the automata classes.
#pragma once

#include <string_view>

#include "core/span.hpp"
#include "grammar/cfg.hpp"

namespace spanners {

/// A compiled context-free spanner.
class CfgSpanner {
 public:
  explicit CfgSpanner(Cfg cfg) : cfg_(std::move(cfg)) {}

  /// Parses the grammar text of ParseCfg.
  static CfgSpanner Compile(std::string_view grammar_text) {
    return CfgSpanner(ParseCfg(grammar_text));
  }

  const Cfg& grammar() const { return cfg_; }
  const VariableSet& variables() const { return cfg_.variables(); }

  /// [[L(G)]](document). Polynomial-time derivability pruning; derivation
  /// enumeration is output-sensitive but worst-case exponential on highly
  /// ambiguous grammars.
  SpanRelation Evaluate(std::string_view document) const;

  /// True iff the relation is non-empty (early exit).
  bool NonEmpty(std::string_view document) const;

 private:
  Cfg cfg_;
};

}  // namespace spanners
