#include "grammar/cfg.hpp"

#include <cctype>
#include <map>

#include "util/common.hpp"

namespace spanners {

NonterminalId Cfg::Intern(const std::string& name) {
  for (NonterminalId n = 0; n < names_.size(); ++n) {
    if (names_[n] == name) return n;
  }
  names_.push_back(name);
  by_lhs_vec_.emplace_back();
  return static_cast<NonterminalId>(names_.size() - 1);
}

void Cfg::AddProduction(NonterminalId lhs, std::vector<GrammarSymbol> rhs) {
  Require(lhs < names_.size(), "Cfg::AddProduction: unknown nonterminal");
  productions_.push_back({lhs, std::move(rhs)});
  by_lhs_vec_[lhs].push_back(productions_.size() - 1);
}

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Cfg ParseCfg(std::string_view text) {
  Cfg cfg;
  bool start_set = false;
  std::size_t pos = 0;
  auto skip_blank = [&](bool include_newlines) {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' ||
            (include_newlines && (text[pos] == '\n' || text[pos] == ';')))) {
      ++pos;
    }
  };
  while (true) {
    skip_blank(true);
    if (pos >= text.size()) break;
    // Left-hand side.
    Require(std::isupper(static_cast<unsigned char>(text[pos])),
            "ParseCfg: production must start with a nonterminal");
    std::string lhs_name;
    while (pos < text.size() && IsIdentChar(text[pos])) lhs_name.push_back(text[pos++]);
    const NonterminalId lhs = cfg.Intern(lhs_name);
    if (!start_set) {
      cfg.SetStart(lhs);
      start_set = true;
    }
    skip_blank(false);
    Require(pos + 1 < text.size() && text[pos] == ':' && text[pos + 1] == '=',
            "ParseCfg: expected ':='");
    pos += 2;
    // Alternatives until newline/';'.
    std::vector<GrammarSymbol> rhs;
    auto flush = [&] {
      cfg.AddProduction(lhs, std::move(rhs));
      rhs = {};
    };
    while (true) {
      skip_blank(false);
      if (pos >= text.size() || text[pos] == '\n' || text[pos] == ';') {
        flush();
        break;
      }
      const char c = text[pos];
      if (c == '|') {
        ++pos;
        flush();
        continue;
      }
      if (c == '(') {
        Require(pos + 1 < text.size() && text[pos + 1] == ')', "ParseCfg: expected '()'");
        pos += 2;
        continue;  // epsilon: contributes nothing
      }
      if (c == '\'') {
        Require(pos + 2 < text.size() && text[pos + 2] == '\'',
                "ParseCfg: bad quoted terminal");
        rhs.push_back(GrammarSymbol::Terminal(
            Symbol::Char(static_cast<unsigned char>(text[pos + 1]))));
        pos += 3;
        continue;
      }
      if (c == '<') {  // closing marker "<name"
        ++pos;
        std::string name;
        while (pos < text.size() && IsIdentChar(text[pos])) name.push_back(text[pos++]);
        Require(!name.empty(), "ParseCfg: bad closing marker");
        rhs.push_back(
            GrammarSymbol::Terminal(Symbol::Close(cfg.mutable_variables().Intern(name))));
        continue;
      }
      if (std::isupper(static_cast<unsigned char>(c))) {  // nonterminal
        std::string name;
        while (pos < text.size() && IsIdentChar(text[pos])) name.push_back(text[pos++]);
        rhs.push_back(GrammarSymbol::Nonterminal(cfg.Intern(name)));
        continue;
      }
      if (IsIdentChar(c)) {
        // Either a terminal letter or an opening marker "name>".
        std::string name;
        while (pos < text.size() && IsIdentChar(text[pos])) name.push_back(text[pos++]);
        if (pos < text.size() && text[pos] == '>') {
          ++pos;
          rhs.push_back(GrammarSymbol::Terminal(
              Symbol::Open(cfg.mutable_variables().Intern(name))));
        } else {
          Require(name.size() == 1, "ParseCfg: multi-letter terminals must be quoted");
          rhs.push_back(GrammarSymbol::Terminal(
              Symbol::Char(static_cast<unsigned char>(name[0]))));
        }
        continue;
      }
      // Any other single character is a terminal.
      rhs.push_back(GrammarSymbol::Terminal(Symbol::Char(static_cast<unsigned char>(c))));
      ++pos;
    }
  }
  Require(start_set, "ParseCfg: empty grammar");
  return cfg;
}

}  // namespace spanners
