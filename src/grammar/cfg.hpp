/// \file cfg.hpp
/// \brief Context-free grammars over the extended symbol alphabet.
///
/// Section 2.1 of the paper observes that replacing "regular" by any
/// language class closed under intersection with regular languages yields a
/// spanner class; Peterfreund [31] studies the context-free case
/// ("extraction grammars"). This module provides the grammar substrate: a
/// CFG whose terminals are Symbols (characters and markers), with a small
/// textual format:
///
///     S  := a S b | ()
///     S  := x> Inner <x
///
/// Tokens: a bare lowercase letter / digit / quoted 'c' is a terminal
/// character; an identifier starting with an upper-case letter is a
/// nonterminal; "name>" and "<name" are the opening/closing markers of
/// variable `name`; "()" is the empty word. Alternatives are separated by
/// '|', productions by newlines or ';'.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "automata/symbol.hpp"
#include "core/variables.hpp"

namespace spanners {

/// Dense nonterminal id.
using NonterminalId = uint32_t;

/// One right-hand-side element: a terminal Symbol or a nonterminal.
struct GrammarSymbol {
  bool is_terminal = false;
  Symbol terminal;
  NonterminalId nonterminal = 0;

  static GrammarSymbol Terminal(Symbol s) { return {true, s, 0}; }
  static GrammarSymbol Nonterminal(NonterminalId n) {
    return {false, Symbol::Epsilon(), n};
  }
};

/// A context-free grammar over the extended alphabet.
class Cfg {
 public:
  /// Interns a nonterminal by name.
  NonterminalId Intern(const std::string& name);

  /// Adds a production lhs -> rhs.
  void AddProduction(NonterminalId lhs, std::vector<GrammarSymbol> rhs);

  void SetStart(NonterminalId start) { start_ = start; }
  NonterminalId start() const { return start_; }

  std::size_t num_nonterminals() const { return names_.size(); }
  const std::string& Name(NonterminalId n) const { return names_[n]; }

  struct Production {
    NonterminalId lhs;
    std::vector<GrammarSymbol> rhs;
  };
  const std::vector<Production>& productions() const { return productions_; }

  /// Productions grouped by left-hand side.
  const std::vector<std::size_t>& ProductionsOf(NonterminalId n) const {
    return by_lhs_vec_[n];
  }

  VariableSet& mutable_variables() { return variables_; }
  const VariableSet& variables() const { return variables_; }

 private:
  std::vector<std::string> names_;
  std::vector<Production> productions_;
  std::vector<std::vector<std::size_t>> by_lhs_vec_;
  NonterminalId start_ = 0;
  VariableSet variables_;
};

/// Parses the textual grammar format; the first production's left-hand side
/// becomes the start symbol. Aborts on syntax errors (test/example use).
Cfg ParseCfg(std::string_view text);

}  // namespace spanners
