#include "grammar/cyk_spanner.hpp"

#include <functional>
#include <set>
#include <tuple>

#include "util/common.hpp"

namespace spanners {
namespace {

using Config = uint64_t;

uint8_t StatusOf(Config config, VariableId v) { return (config >> (2 * v)) & 3; }

Config WithStatus(Config config, VariableId v, uint8_t status) {
  return (config & ~(Config{3} << (2 * v))) | (Config{status} << (2 * v));
}

struct CfgEvaluator {
  const Cfg& cfg;
  std::string_view document;
  bool stop_on_first = false;
  bool found_any = false;
  SpanRelation relation;

  std::size_t n = 0;
  // derives[nt][i * (n+1) + j]: nt =>* marked word with char projection
  // document[i, j).
  std::vector<std::vector<bool>> derives;

  std::vector<std::pair<std::size_t, MarkerSet>> events;  // (gap, markers)
  std::set<std::tuple<NonterminalId, std::size_t, std::size_t, Config>> on_path;

  bool Derives(NonterminalId nt, std::size_t i, std::size_t j) const {
    return derives[nt][i * (n + 1) + j];
  }

  /// Positions reachable by matching the rhs suffix from \p element onward,
  /// starting at \p i, under the current derivability table.
  std::vector<bool> SequenceReach(const std::vector<GrammarSymbol>& rhs, std::size_t i) const {
    std::vector<bool> current(n + 1, false);
    current[i] = true;
    for (const GrammarSymbol& gs : rhs) {
      std::vector<bool> next(n + 1, false);
      for (std::size_t p = 0; p <= n; ++p) {
        if (!current[p]) continue;
        if (gs.is_terminal) {
          if (gs.terminal.IsChar()) {
            if (p < n && static_cast<unsigned char>(document[p]) == gs.terminal.ch()) {
              next[p + 1] = true;
            }
          } else {
            next[p] = true;  // markers consume no characters
          }
        } else {
          for (std::size_t q = p; q <= n; ++q) {
            if (Derives(gs.nonterminal, p, q)) next[q] = true;
          }
        }
      }
      current = std::move(next);
    }
    return current;
  }

  void BuildDerivability() {
    n = document.size();
    derives.assign(cfg.num_nonterminals(), std::vector<bool>((n + 1) * (n + 1), false));
    bool changed = true;
    while (changed) {
      changed = false;
      for (const Cfg::Production& production : cfg.productions()) {
        for (std::size_t i = 0; i <= n; ++i) {
          const std::vector<bool> reach = SequenceReach(production.rhs, i);
          for (std::size_t j = i; j <= n; ++j) {
            if (reach[j] && !Derives(production.lhs, i, j)) {
              derives[production.lhs][i * (n + 1) + j] = true;
              changed = true;
            }
          }
        }
      }
    }
  }

  void EmitIfValid(Config config) {
    const std::size_t num_vars = cfg.variables().size();
    for (VariableId v = 0; v < num_vars; ++v) {
      if (StatusOf(config, v) == 1) return;  // variable left open
    }
    SpanTuple tuple(num_vars);
    std::vector<Position> open_at(num_vars, 0);
    for (const auto& [gap, markers] : events) {
      const Position here = static_cast<Position>(gap + 1);
      for (VariableId v = 0; v < num_vars; ++v) {
        if (markers & OpenMarker(v)) open_at[v] = here;
        if (markers & CloseMarker(v)) tuple[v] = Span(open_at[v], here);
      }
    }
    relation.insert(std::move(tuple));
    found_any = true;
  }

  /// Type-erased continuation: receives the configuration after the
  /// matched part and returns false to stop the whole enumeration. (Erased
  /// rather than templated: the mutual recursion would otherwise instantiate
  /// an unbounded chain of lambda types.)
  using Done = std::function<bool(Config)>;

  /// Enumerates derivations of the rhs suffix rhs[element..] over
  /// document[p, j), threading the marker configuration; \p done is invoked
  /// with the final configuration.
  bool MatchSequence(const std::vector<GrammarSymbol>& rhs, std::size_t element,
                     std::size_t p, std::size_t j, Config config, const Done& done) {
    if (stop_on_first && found_any) return false;
    if (element == rhs.size()) {
      if (p == j) return done(config);
      return true;
    }
    const GrammarSymbol& gs = rhs[element];
    if (gs.is_terminal) {
      if (gs.terminal.IsChar()) {
        if (p < j && static_cast<unsigned char>(document[p]) == gs.terminal.ch()) {
          return MatchSequence(rhs, element + 1, p + 1, j, config, done);
        }
        return true;
      }
      // Marker: fires in gap p; invalid usage prunes the derivation.
      const VariableId v = gs.terminal.variable();
      const bool opening = gs.terminal.kind() == SymbolKind::kOpen;
      if (opening && StatusOf(config, v) != 0) return true;
      if (!opening && StatusOf(config, v) != 1) return true;
      events.push_back({p, gs.terminal.marker_bit()});
      const bool keep_going = MatchSequence(
          rhs, element + 1, p, j, WithStatus(config, v, opening ? 1 : 2), done);
      events.pop_back();
      return keep_going;
    }
    // Nonterminal: try every split consistent with the derivability table.
    for (std::size_t q = p; q <= j; ++q) {
      if (!Derives(gs.nonterminal, p, q)) continue;
      auto rest = [&, q](Config after) {
        return MatchSequence(rhs, element + 1, q, j, after, done);
      };
      if (!Expand(gs.nonterminal, p, q, config, rest)) return false;
    }
    return true;
  }

  bool Expand(NonterminalId nt, std::size_t i, std::size_t j, Config config,
              const Done& done) {
    const auto key = std::make_tuple(nt, i, j, config);
    if (!on_path.insert(key).second) return true;  // unary/epsilon cycle
    bool keep_going = true;
    for (std::size_t production_index : cfg.ProductionsOf(nt)) {
      const Cfg::Production& production = cfg.productions()[production_index];
      if (!MatchSequence(production.rhs, 0, i, j, config, done)) {
        keep_going = false;
        break;
      }
    }
    on_path.erase(key);
    return keep_going;
  }

  void Run() {
    BuildDerivability();
    if (!Derives(cfg.start(), 0, document.size())) return;
    Expand(cfg.start(), 0, document.size(), 0, [&](Config config) {
      EmitIfValid(config);
      return !(stop_on_first && found_any);
    });
  }
};

}  // namespace

SpanRelation CfgSpanner::Evaluate(std::string_view document) const {
  CfgEvaluator evaluator{cfg_, document};
  evaluator.Run();
  return std::move(evaluator.relation);
}

bool CfgSpanner::NonEmpty(std::string_view document) const {
  CfgEvaluator evaluator{cfg_, document};
  evaluator.stop_on_first = true;
  evaluator.Run();
  return evaluator.found_any;
}

}  // namespace spanners
