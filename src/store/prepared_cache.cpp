#include "store/prepared_cache.hpp"

#include <utility>

#include "engine/document.hpp"
#include "engine/evaluator.hpp"
#include "engine/session.hpp"
#include "util/flight_recorder.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace spanners {
namespace {

/// Stable handles into the global registry (resolved once; recording through
/// them is lock-free per metrics.hpp).
struct CacheMetrics {
  Counter& hits = MetricsRegistry::Global().GetCounter("store.cache.hit");
  Counter& misses = MetricsRegistry::Global().GetCounter("store.cache.miss");
  Counter& evictions = MetricsRegistry::Global().GetCounter("store.cache.evictions");
  Counter& evicted_bytes =
      MetricsRegistry::Global().GetCounter("store.cache.evicted_bytes");
  Counter& spliced = MetricsRegistry::Global().GetCounter("store.cache.spliced");
  Counter& refilled_nodes =
      MetricsRegistry::Global().GetCounter("store.cache.refilled_nodes");
  Counter& repaired = MetricsRegistry::Global().GetCounter("store.cache.repaired");
  Gauge& bytes = MetricsRegistry::Global().GetGauge("store.cache.bytes");
  Gauge& entries = MetricsRegistry::Global().GetGauge("store.cache.entries");
  Histogram& query_ns = MetricsRegistry::Global().GetHistogram("store.query_ns");

  static CacheMetrics& Get() {
    static CacheMetrics metrics;
    return metrics;
  }
};

/// One flight-recorder event per store-path query. \p via_session is true
/// when the session's planner ran the evaluation -- the session already
/// recorded a kQuery event for it, so this one only adds the store-cache
/// verdict.
void RecordStoreQueryEvent(uint64_t duration_ns, bool cache_hit,
                           bool via_session) {
  if (via_session) return;
  FlightEvent event;
  event.kind = FlightEvent::Kind::kQuery;
  event.decision = FlightEvent::Decision::kStore;
  event.plan = static_cast<uint8_t>(PlanKind::kSlpMatrix);
  event.cache_hit = cache_hit;
  event.duration_ns = duration_ns;
  FlightRecorder::Global().Record(event);
}

}  // namespace

std::size_t ApproxRelationBytes(const SpanRelation& relation) {
  // Red-black node + key object per tuple, plus the tuple's span vector.
  std::size_t per_tuple = 0;
  if (!relation.empty()) {
    per_tuple = 64 + sizeof(SpanTuple) +
                relation.begin()->arity() * sizeof(std::optional<Span>);
  }
  return sizeof(SpanRelation) + relation.size() * per_tuple;
}

PreparedStateCache::PreparedStateCache(std::size_t budget_bytes)
    : budget_bytes_(budget_bytes) {}

Expected<SpanRelation> PreparedStateCache::Evaluate(Session& session,
                                                    const CompiledQuery& query,
                                                    const StoreSnapshot& snapshot,
                                                    StoreDocId doc) {
  if (snapshot.empty()) {
    return Unexpected("store cache: empty snapshot");
  }
  if (!snapshot.Contains(doc)) {
    return Unexpected("store cache: document D" + std::to_string(doc) +
                      " is not in this snapshot");
  }
  // The caller's snapshot pins the epoch (and so the arena) for the whole
  // call; cache entries deliberately hold no epoch handle themselves.
  const Slp& slp = snapshot.slp();
  const NodeId root = snapshot.RootOf(doc);
  const uint64_t arena = slp.arena_id();
  const ResultKey key{&query, arena, root};
  CacheMetrics& metrics = CacheMetrics::Get();
  const uint64_t query_start = MetricsEnabled() ? NowNanos() : 0;

  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = results_.find(key);
    if (it != results_.end()) {
      it->second->stamp = ++clock_;
      ++hits_;
      if (MetricsEnabled()) {
        metrics.hits.Increment();
        const uint64_t elapsed = NowNanos() - query_start;
        metrics.query_ns.Record(elapsed);
        RecordStoreQueryEvent(elapsed, /*cache_hit=*/true, /*via_session=*/false);
      }
      return it->second->result;
    }
    ++misses_;
    if (MetricsEnabled()) metrics.misses.Increment();
  }

  // Miss: compute without holding the cache mutex. Reference-free queries on
  // a non-empty document take the shared matrix path (the per-generation
  // evaluator amortises node matrices across documents and edits); everything
  // else goes through the session's planner over a document view.
  SpanRelation result;
  bool via_session = false;
  if (!query.features().has_references && root != kNoNode) {
    std::shared_ptr<MatrixEntry> entry;
    bool warm = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      std::shared_ptr<MatrixEntry>& slot = matrices_[MatrixKey{&query, arena}];
      if (slot == nullptr) {
        slot = std::make_shared<MatrixEntry>();
        slot->evaluator = std::make_unique<SlpSpannerEvaluator>(&query.backing_edva());
        slot->bytes = 0;
      }
      warm = slot->bytes > 0;  // a previous fill was accounted
      slot->stamp = ++clock_;
      entry = slot;
    }
    // Splice decision: a warm matrix entry plus the publishing commit's
    // dirty path for this document means the only uncached nodes under
    // root are the path's fresh nodes -- repair exactly those and skip the
    // whole-subtree discovery walk (DESIGN.md §1.16).
    const StoreEditDelta* delta =
        warm ? snapshot.EditDeltaFor(doc) : nullptr;
    if (delta != nullptr && delta->new_root != root) delta = nullptr;
    {
      ScopedSpan span("store.cache.matrix_fill");
      std::lock_guard<std::mutex> eval_lock(entry->eval_mutex);
      std::size_t refilled = 0;
      if (delta != nullptr) {
        refilled = entry->evaluator->RefillPath(slp, delta->dirty);
      }
      result = FinishSlpRelation(query, slp, root,
                                 entry->evaluator->EvaluateToRelation(slp, root));
      const std::size_t new_bytes = entry->evaluator->CacheBytes();
      std::lock_guard<std::mutex> lock(mutex_);
      if (delta != nullptr) {
        ++spliced_;
        refilled_nodes_ += refilled;
        if (MetricsEnabled()) {
          metrics.spliced.Increment();
          metrics.refilled_nodes.Add(refilled);
        }
      }
      // The entry may have been evicted while we filled it; only entries
      // still in the map participate in the byte accounting.
      auto it = matrices_.find(MatrixKey{&query, arena});
      if (it != matrices_.end() && it->second == entry) {
        total_bytes_ += new_bytes - entry->bytes;
        entry->bytes = new_bytes;
        EvictToBudget();
      }
    }
  } else {
    via_session = true;
    Expected<SpanRelation> evaluated =
        session.Evaluate(query, Document::FromSlp(&slp, root));
    if (!evaluated.ok()) return evaluated;
    result = *std::move(evaluated);
  }
  if (query_start != 0) {
    const uint64_t elapsed = NowNanos() - query_start;
    metrics.query_ns.Record(elapsed);
    RecordStoreQueryEvent(elapsed, /*cache_hit=*/false, via_session);
  }

  // Retain the finished relation (a hit for every later evaluation of this
  // (query, document-version) pair, from any snapshot that still sees it).
  auto entry = std::make_shared<ResultEntry>();
  entry->result = result;
  entry->bytes = ApproxRelationBytes(result);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    entry->stamp = ++clock_;
    auto [it, inserted] = results_.emplace(key, entry);
    if (inserted) {
      total_bytes_ += entry->bytes;
      EvictToBudget();
    }
    if (MetricsEnabled()) {
      metrics.bytes.Set(static_cast<int64_t>(total_bytes_));
      metrics.entries.Set(static_cast<int64_t>(results_.size() + matrices_.size()));
    }
  }
  return Expected<SpanRelation>(std::move(result));
}

void PreparedStateCache::SetBudgetBytes(std::size_t budget_bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  budget_bytes_ = budget_bytes;
  EvictToBudget();
}

std::size_t PreparedStateCache::budget_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return budget_bytes_;
}

PreparedCacheStats PreparedStateCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  PreparedCacheStats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.evictions = evictions_;
  stats.evicted_bytes = evicted_bytes_;
  stats.spliced = spliced_;
  stats.refilled_nodes = refilled_nodes_;
  stats.repaired_entries = repaired_entries_;
  stats.bytes = total_bytes_;
  stats.result_entries = results_.size();
  stats.matrix_entries = matrices_.size();
  stats.budget_bytes = budget_bytes_;
  return stats;
}

void PreparedStateCache::DropArena(uint64_t arena_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = results_.begin(); it != results_.end();) {
    if (it->first.arena == arena_id) {
      total_bytes_ -= it->second->bytes;
      it = results_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = matrices_.begin(); it != matrices_.end();) {
    if (it->first.arena == arena_id) {
      total_bytes_ -= it->second->bytes;
      it = matrices_.erase(it);
    } else {
      ++it;
    }
  }
  if (MetricsEnabled()) {
    CacheMetrics& metrics = CacheMetrics::Get();
    metrics.bytes.Set(static_cast<int64_t>(total_bytes_));
    metrics.entries.Set(static_cast<int64_t>(results_.size() + matrices_.size()));
  }
}

std::size_t PreparedStateCache::RebindArena(uint64_t from_arena,
                                            uint64_t to_arena) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t moved = 0;
  // Result entries: node ids are identical in the thawed twin, so only the
  // arena component of the key changes.
  std::map<ResultKey, std::shared_ptr<ResultEntry>> results;
  for (auto& [key, entry] : results_) {
    ResultKey moved_key = key;
    if (key.arena == from_arena) {
      moved_key.arena = to_arena;
      ++moved;
    }
    results.emplace(moved_key, std::move(entry));
  }
  results_ = std::move(results);
  // Matrix entries: the evaluator's own binding moves too. An evaluator that
  // is mid-evaluation belongs to a reader on the superseded mapped epoch;
  // drop that entry instead of blocking the commit path on it.
  std::map<MatrixKey, std::shared_ptr<MatrixEntry>> matrices;
  for (auto& [key, entry] : matrices_) {
    if (key.arena != from_arena) {
      matrices.emplace(key, std::move(entry));
      continue;
    }
    std::unique_lock<std::mutex> eval_lock(entry->eval_mutex, std::try_to_lock);
    if (!eval_lock.owns_lock()) {
      total_bytes_ -= entry->bytes;
      continue;
    }
    entry->evaluator->RebindArena(from_arena, to_arena);
    eval_lock.unlock();
    ++moved;
    matrices.emplace(MatrixKey{key.query, to_arena}, std::move(entry));
  }
  matrices_ = std::move(matrices);
  repaired_entries_ += moved;
  if (MetricsEnabled()) {
    CacheMetrics& metrics = CacheMetrics::Get();
    metrics.repaired.Add(moved);
    metrics.bytes.Set(static_cast<int64_t>(total_bytes_));
    metrics.entries.Set(static_cast<int64_t>(results_.size() + matrices_.size()));
  }
  return moved;
}

std::size_t PreparedStateCache::RemapArena(uint64_t from_arena, uint64_t to_arena,
                                           const std::vector<NodeId>& remap) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t retained = 0;
  std::map<ResultKey, std::shared_ptr<ResultEntry>> results;
  for (auto& [key, entry] : results_) {
    if (key.arena != from_arena) {
      results.emplace(key, std::move(entry));
      continue;
    }
    const NodeId root = key.root;
    const NodeId moved_root =
        root != kNoNode && root < remap.size() ? remap[root] : kNoNode;
    if (root != kNoNode && moved_root == kNoNode) {
      // The root was reclaimed: a superseded document version no snapshot
      // can name anymore. GC doubles as stale-result pruning.
      total_bytes_ -= entry->bytes;
      continue;
    }
    ++retained;
    results.emplace(ResultKey{key.query, to_arena, moved_root}, std::move(entry));
  }
  results_ = std::move(results);
  std::map<MatrixKey, std::shared_ptr<MatrixEntry>> matrices;
  for (auto& [key, entry] : matrices_) {
    if (key.arena != from_arena) {
      matrices.emplace(key, std::move(entry));
      continue;
    }
    // Matrices depend only on each node's derived string, which compaction
    // preserves node-for-node -- rewrite the cache through the mapping. A
    // mid-evaluation evaluator (reader on the superseded epoch) is dropped
    // instead of blocking the commit path.
    std::unique_lock<std::mutex> eval_lock(entry->eval_mutex, std::try_to_lock);
    if (!eval_lock.owns_lock()) {
      total_bytes_ -= entry->bytes;
      continue;
    }
    entry->evaluator->RemapCache(from_arena, remap, to_arena);
    const std::size_t new_bytes = entry->evaluator->CacheBytes();
    eval_lock.unlock();
    total_bytes_ += new_bytes - entry->bytes;
    entry->bytes = new_bytes;
    ++retained;
    matrices.emplace(MatrixKey{key.query, to_arena}, std::move(entry));
  }
  matrices_ = std::move(matrices);
  repaired_entries_ += retained;
  if (MetricsEnabled()) {
    CacheMetrics& metrics = CacheMetrics::Get();
    metrics.repaired.Add(retained);
    metrics.bytes.Set(static_cast<int64_t>(total_bytes_));
    metrics.entries.Set(static_cast<int64_t>(results_.size() + matrices_.size()));
  }
  return retained;
}

std::string PreparedStateCache::ExplainEntry(const CompiledQuery& query,
                                             const StoreSnapshot& snapshot,
                                             StoreDocId doc) const {
  if (snapshot.empty() || !snapshot.Contains(doc)) {
    return "store-cache: document not in snapshot\n";
  }
  const uint64_t arena = snapshot.slp().arena_id();
  const NodeId root = snapshot.RootOf(doc);
  std::lock_guard<std::mutex> lock(mutex_);
  std::string line = "store-cache: result=";
  line += results_.count(ResultKey{&query, arena, root}) != 0 ? "hit" : "miss";
  auto it = matrices_.find(MatrixKey{&query, arena});
  const bool warm = it != matrices_.end() && it->second->bytes > 0;
  line += warm ? " matrix=warm" : " matrix=cold";
  const StoreEditDelta* delta = snapshot.EditDeltaFor(doc);
  if (warm && delta != nullptr && delta->new_root == root) {
    line += " decision=splice-repair dirty-path=" +
            std::to_string(delta->dirty.size());
  } else if (query.features().has_references || root == kNoNode) {
    line += " decision=session-planner";
  } else {
    line += warm ? " decision=reuse" : " decision=full-fill";
  }
  line += " spliced=" + std::to_string(spliced_) +
          " refilled-nodes=" + std::to_string(refilled_nodes_) +
          " repaired-entries=" + std::to_string(repaired_entries_) + "\n";
  return line;
}

void PreparedStateCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  results_.clear();
  matrices_.clear();
  total_bytes_ = 0;
  if (MetricsEnabled()) {
    CacheMetrics& metrics = CacheMetrics::Get();
    metrics.bytes.Set(0);
    metrics.entries.Set(0);
  }
}

void PreparedStateCache::EvictToBudget() {
  CacheMetrics& metrics = CacheMetrics::Get();
  while (total_bytes_ > budget_bytes_ &&
         !(results_.empty() && matrices_.empty())) {
    // Strict LRU across both kinds: O(entries) scan per eviction, fine for
    // the entry counts a byte budget admits.
    auto victim_result = results_.end();
    auto victim_matrix = matrices_.end();
    uint64_t oldest = UINT64_MAX;
    for (auto it = results_.begin(); it != results_.end(); ++it) {
      if (it->second->stamp < oldest) {
        oldest = it->second->stamp;
        victim_result = it;
        victim_matrix = matrices_.end();
      }
    }
    for (auto it = matrices_.begin(); it != matrices_.end(); ++it) {
      if (it->second->stamp < oldest) {
        oldest = it->second->stamp;
        victim_matrix = it;
        victim_result = results_.end();
      }
    }
    std::size_t freed = 0;
    if (victim_matrix != matrices_.end()) {
      freed = victim_matrix->second->bytes;
      matrices_.erase(victim_matrix);
    } else if (victim_result != results_.end()) {
      freed = victim_result->second->bytes;
      results_.erase(victim_result);
    } else {
      break;
    }
    total_bytes_ -= freed;
    ++evictions_;
    evicted_bytes_ += freed;
    if (MetricsEnabled()) {
      metrics.evictions.Increment();
      metrics.evicted_bytes.Add(freed);
    }
  }
  if (MetricsEnabled()) {
    metrics.bytes.Set(static_cast<int64_t>(total_bytes_));
    metrics.entries.Set(static_cast<int64_t>(results_.size() + matrices_.size()));
  }
}

}  // namespace spanners
