#include "store/prepared_cache.hpp"

#include <utility>

#include "engine/document.hpp"
#include "engine/evaluator.hpp"
#include "engine/session.hpp"
#include "util/flight_recorder.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace spanners {
namespace {

/// Stable handles into the global registry (resolved once; recording through
/// them is lock-free per metrics.hpp).
struct CacheMetrics {
  Counter& hits = MetricsRegistry::Global().GetCounter("store.cache.hit");
  Counter& misses = MetricsRegistry::Global().GetCounter("store.cache.miss");
  Counter& evictions = MetricsRegistry::Global().GetCounter("store.cache.evictions");
  Counter& evicted_bytes =
      MetricsRegistry::Global().GetCounter("store.cache.evicted_bytes");
  Gauge& bytes = MetricsRegistry::Global().GetGauge("store.cache.bytes");
  Gauge& entries = MetricsRegistry::Global().GetGauge("store.cache.entries");
  Histogram& query_ns = MetricsRegistry::Global().GetHistogram("store.query_ns");

  static CacheMetrics& Get() {
    static CacheMetrics metrics;
    return metrics;
  }
};

/// One flight-recorder event per store-path query. \p via_session is true
/// when the session's planner ran the evaluation -- the session already
/// recorded a kQuery event for it, so this one only adds the store-cache
/// verdict.
void RecordStoreQueryEvent(uint64_t duration_ns, bool cache_hit,
                           bool via_session) {
  if (via_session) return;
  FlightEvent event;
  event.kind = FlightEvent::Kind::kQuery;
  event.decision = FlightEvent::Decision::kStore;
  event.plan = static_cast<uint8_t>(PlanKind::kSlpMatrix);
  event.cache_hit = cache_hit;
  event.duration_ns = duration_ns;
  FlightRecorder::Global().Record(event);
}

}  // namespace

std::size_t ApproxRelationBytes(const SpanRelation& relation) {
  // Red-black node + key object per tuple, plus the tuple's span vector.
  std::size_t per_tuple = 0;
  if (!relation.empty()) {
    per_tuple = 64 + sizeof(SpanTuple) +
                relation.begin()->arity() * sizeof(std::optional<Span>);
  }
  return sizeof(SpanRelation) + relation.size() * per_tuple;
}

PreparedStateCache::PreparedStateCache(std::size_t budget_bytes)
    : budget_bytes_(budget_bytes) {}

Expected<SpanRelation> PreparedStateCache::Evaluate(Session& session,
                                                    const CompiledQuery& query,
                                                    const StoreSnapshot& snapshot,
                                                    StoreDocId doc) {
  if (snapshot.empty()) {
    return Unexpected("store cache: empty snapshot");
  }
  if (!snapshot.Contains(doc)) {
    return Unexpected("store cache: document D" + std::to_string(doc) +
                      " is not in this snapshot");
  }
  // The caller's snapshot pins the epoch (and so the arena) for the whole
  // call; cache entries deliberately hold no epoch handle themselves.
  const Slp& slp = snapshot.slp();
  const NodeId root = snapshot.RootOf(doc);
  const uint64_t arena = slp.arena_id();
  const ResultKey key{&query, arena, root};
  CacheMetrics& metrics = CacheMetrics::Get();
  const uint64_t query_start = MetricsEnabled() ? NowNanos() : 0;

  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = results_.find(key);
    if (it != results_.end()) {
      it->second->stamp = ++clock_;
      ++hits_;
      if (MetricsEnabled()) {
        metrics.hits.Increment();
        const uint64_t elapsed = NowNanos() - query_start;
        metrics.query_ns.Record(elapsed);
        RecordStoreQueryEvent(elapsed, /*cache_hit=*/true, /*via_session=*/false);
      }
      return it->second->result;
    }
    ++misses_;
    if (MetricsEnabled()) metrics.misses.Increment();
  }

  // Miss: compute without holding the cache mutex. Reference-free queries on
  // a non-empty document take the shared matrix path (the per-generation
  // evaluator amortises node matrices across documents and edits); everything
  // else goes through the session's planner over a document view.
  SpanRelation result;
  bool via_session = false;
  if (!query.features().has_references && root != kNoNode) {
    std::shared_ptr<MatrixEntry> entry;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      std::shared_ptr<MatrixEntry>& slot = matrices_[MatrixKey{&query, arena}];
      if (slot == nullptr) {
        slot = std::make_shared<MatrixEntry>();
        slot->evaluator = std::make_unique<SlpSpannerEvaluator>(&query.backing_edva());
        slot->bytes = 0;
      }
      slot->stamp = ++clock_;
      entry = slot;
    }
    {
      ScopedSpan span("store.cache.matrix_fill");
      std::lock_guard<std::mutex> eval_lock(entry->eval_mutex);
      result = FinishSlpRelation(query, slp, root,
                                 entry->evaluator->EvaluateToRelation(slp, root));
      const std::size_t new_bytes = entry->evaluator->CacheBytes();
      std::lock_guard<std::mutex> lock(mutex_);
      // The entry may have been evicted while we filled it; only entries
      // still in the map participate in the byte accounting.
      auto it = matrices_.find(MatrixKey{&query, arena});
      if (it != matrices_.end() && it->second == entry) {
        total_bytes_ += new_bytes - entry->bytes;
        entry->bytes = new_bytes;
        EvictToBudget();
      }
    }
  } else {
    via_session = true;
    Expected<SpanRelation> evaluated =
        session.Evaluate(query, Document::FromSlp(&slp, root));
    if (!evaluated.ok()) return evaluated;
    result = *std::move(evaluated);
  }
  if (query_start != 0) {
    const uint64_t elapsed = NowNanos() - query_start;
    metrics.query_ns.Record(elapsed);
    RecordStoreQueryEvent(elapsed, /*cache_hit=*/false, via_session);
  }

  // Retain the finished relation (a hit for every later evaluation of this
  // (query, document-version) pair, from any snapshot that still sees it).
  auto entry = std::make_shared<ResultEntry>();
  entry->result = result;
  entry->bytes = ApproxRelationBytes(result);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    entry->stamp = ++clock_;
    auto [it, inserted] = results_.emplace(key, entry);
    if (inserted) {
      total_bytes_ += entry->bytes;
      EvictToBudget();
    }
    if (MetricsEnabled()) {
      metrics.bytes.Set(static_cast<int64_t>(total_bytes_));
      metrics.entries.Set(static_cast<int64_t>(results_.size() + matrices_.size()));
    }
  }
  return Expected<SpanRelation>(std::move(result));
}

void PreparedStateCache::SetBudgetBytes(std::size_t budget_bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  budget_bytes_ = budget_bytes;
  EvictToBudget();
}

std::size_t PreparedStateCache::budget_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return budget_bytes_;
}

PreparedCacheStats PreparedStateCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  PreparedCacheStats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.evictions = evictions_;
  stats.evicted_bytes = evicted_bytes_;
  stats.bytes = total_bytes_;
  stats.result_entries = results_.size();
  stats.matrix_entries = matrices_.size();
  stats.budget_bytes = budget_bytes_;
  return stats;
}

void PreparedStateCache::DropArena(uint64_t arena_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = results_.begin(); it != results_.end();) {
    if (it->first.arena == arena_id) {
      total_bytes_ -= it->second->bytes;
      it = results_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = matrices_.begin(); it != matrices_.end();) {
    if (it->first.arena == arena_id) {
      total_bytes_ -= it->second->bytes;
      it = matrices_.erase(it);
    } else {
      ++it;
    }
  }
  if (MetricsEnabled()) {
    CacheMetrics& metrics = CacheMetrics::Get();
    metrics.bytes.Set(static_cast<int64_t>(total_bytes_));
    metrics.entries.Set(static_cast<int64_t>(results_.size() + matrices_.size()));
  }
}

void PreparedStateCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  results_.clear();
  matrices_.clear();
  total_bytes_ = 0;
  if (MetricsEnabled()) {
    CacheMetrics& metrics = CacheMetrics::Get();
    metrics.bytes.Set(0);
    metrics.entries.Set(0);
  }
}

void PreparedStateCache::EvictToBudget() {
  CacheMetrics& metrics = CacheMetrics::Get();
  while (total_bytes_ > budget_bytes_ &&
         !(results_.empty() && matrices_.empty())) {
    // Strict LRU across both kinds: O(entries) scan per eviction, fine for
    // the entry counts a byte budget admits.
    auto victim_result = results_.end();
    auto victim_matrix = matrices_.end();
    uint64_t oldest = UINT64_MAX;
    for (auto it = results_.begin(); it != results_.end(); ++it) {
      if (it->second->stamp < oldest) {
        oldest = it->second->stamp;
        victim_result = it;
        victim_matrix = matrices_.end();
      }
    }
    for (auto it = matrices_.begin(); it != matrices_.end(); ++it) {
      if (it->second->stamp < oldest) {
        oldest = it->second->stamp;
        victim_matrix = it;
        victim_result = results_.end();
      }
    }
    std::size_t freed = 0;
    if (victim_matrix != matrices_.end()) {
      freed = victim_matrix->second->bytes;
      matrices_.erase(victim_matrix);
    } else if (victim_result != results_.end()) {
      freed = victim_result->second->bytes;
      results_.erase(victim_result);
    } else {
      break;
    }
    total_bytes_ -= freed;
    ++evictions_;
    evicted_bytes_ += freed;
    if (MetricsEnabled()) {
      metrics.evictions.Increment();
      metrics.evicted_bytes.Add(freed);
    }
  }
  if (MetricsEnabled()) {
    metrics.bytes.Set(static_cast<int64_t>(total_bytes_));
    metrics.entries.Set(static_cast<int64_t>(results_.size() + matrices_.size()));
  }
}

}  // namespace spanners
