/// \file prepared_cache.hpp
/// \brief Byte-budgeted prepared-state cache for store queries (DESIGN.md
/// §1.10).
///
/// Serving the same compiled query over the same document twice should not
/// pay preprocessing twice. The cache holds two kinds of prepared state,
/// both keyed into one LRU under a single configurable byte budget:
///
///  * *result entries*, keyed (query, arena, root NodeId): the finished
///    SpanRelation of one (query, document-version) pair. Because the key
///    is the immutable root -- not the document id -- an unedited
///    document's entry survives arbitrarily many commits that edit *other*
///    documents, and old snapshots keep hitting their version's entries.
///  * *matrix entries*, keyed (query, arena): the SlpSpannerEvaluator whose
///    per-node Boolean-matrix cache (paper §4.2) is shared by every
///    document of one generation -- after a CDE edit only the freshly
///    created nodes pay (§4.3).
///
/// Eviction is strict LRU over both kinds together; the budget is hard
/// (a relation larger than the whole budget is computed, returned, and not
/// retained). Hits, misses, evictions, and byte movement are recorded as
/// store.cache.* metrics (util/metrics.hpp).
///
/// Thread safety: all entry bookkeeping sits behind one mutex that is never
/// held while evaluating; concurrent misses on the same key may duplicate
/// work but converge on one entry. Matrix evaluators are stateful, so each
/// entry carries its own mutex serialising use. Keys hold CompiledQuery
/// pointers: the Session owning the queries must outlive the cache's use of
/// them (drop entries with Clear() if a session is torn down early).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "engine/compiled_query.hpp"
#include "store/snapshot.hpp"
#include "util/common.hpp"

namespace spanners {

class Session;

/// Point-in-time cache statistics (monotonic counters + current footprint).
struct PreparedCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t evicted_bytes = 0;
  uint64_t spliced = 0;          ///< evaluations that took path-splice repair
  uint64_t refilled_nodes = 0;   ///< node matrices recomputed by splices
  uint64_t repaired_entries = 0; ///< entries carried across thaw/GC repairs
  std::size_t bytes = 0;         ///< current footprint (both entry kinds)
  std::size_t result_entries = 0;
  std::size_t matrix_entries = 0;
  std::size_t budget_bytes = 0;
};

/// The store's shared prepared-state cache.
class PreparedStateCache {
 public:
  explicit PreparedStateCache(std::size_t budget_bytes);

  PreparedStateCache(const PreparedStateCache&) = delete;
  PreparedStateCache& operator=(const PreparedStateCache&) = delete;

  /// Evaluates \p query over document \p doc of \p snapshot, serving from
  /// the cache when possible. Reference-free queries run the SLP matrix
  /// path against the snapshot's arena (sharing the per-generation matrix
  /// entry); queries with references fall back to \p session's planner over
  /// a materialised view. Errors are caller data (unknown document,
  /// unsupported forced plans), never fatal.
  Expected<SpanRelation> Evaluate(Session& session, const CompiledQuery& query,
                                  const StoreSnapshot& snapshot, StoreDocId doc);

  /// The budget. Shrinking evicts immediately.
  void SetBudgetBytes(std::size_t budget_bytes);
  std::size_t budget_bytes() const;

  PreparedCacheStats stats() const;

  /// Drops every entry bound to \p arena_id (a superseded generation).
  void DropArena(uint64_t arena_id);

  // --- cross-generation repair (DESIGN.md §1.16) ----------------------------
  //
  // Epoch transitions used to be whole-arena drops; both are now repairs
  // that keep the warm state alive. Either runs on the single-writer commit
  // path. A matrix entry whose evaluator is mid-evaluation (a reader on the
  // superseded snapshot holds its mutex) is dropped rather than waited for
  // -- exactly the old behavior for that entry; the reader finishes safely
  // on its pinned epoch (the evaluator re-binds on next use).

  /// Thaw repair: the entries of \p from_arena move unchanged to
  /// \p to_arena -- a thawed epoch is an id-preserving twin of its mapped
  /// original (SlpSerializer::Thaw). Returns the number of entries moved.
  std::size_t RebindArena(uint64_t from_arena, uint64_t to_arena);

  /// GC repair: entries of \p from_arena are rewritten through CompactSlp's
  /// old->new node mapping instead of dropped. Result entries whose root was
  /// reclaimed (a superseded document version no snapshot can name anymore)
  /// are dropped -- GC doubles as stale-result pruning. Returns the number
  /// of entries retained.
  std::size_t RemapArena(uint64_t from_arena, uint64_t to_arena,
                         const std::vector<NodeId>& remap);

  /// One "store-cache:" ExplainPlan line describing what Evaluate would do
  /// for (query, doc) right now: result hit/miss, matrix state warm/cold,
  /// and whether a dirty path makes splice repair available.
  std::string ExplainEntry(const CompiledQuery& query,
                           const StoreSnapshot& snapshot, StoreDocId doc) const;

  /// Drops everything (counters are kept).
  void Clear();

 private:
  struct ResultKey {
    const CompiledQuery* query;
    uint64_t arena;
    NodeId root;
    auto operator<=>(const ResultKey&) const = default;
  };
  struct ResultEntry {
    SpanRelation result;
    std::size_t bytes = 0;
    uint64_t stamp = 0;
  };
  struct MatrixKey {
    const CompiledQuery* query;
    uint64_t arena;
    auto operator<=>(const MatrixKey&) const = default;
  };
  struct MatrixEntry {
    std::unique_ptr<SlpSpannerEvaluator> evaluator;
    std::mutex eval_mutex;  ///< the evaluator is stateful; one user at a time
    std::size_t bytes = 0;
    uint64_t stamp = 0;
  };

  /// Evicts least-recently-used entries (of either kind) until the
  /// footprint fits the budget. Caller holds mutex_.
  void EvictToBudget();

  mutable std::mutex mutex_;  ///< guards the maps, stamps, and byte totals
  std::map<ResultKey, std::shared_ptr<ResultEntry>> results_;
  std::map<MatrixKey, std::shared_ptr<MatrixEntry>> matrices_;
  std::size_t budget_bytes_;
  std::size_t total_bytes_ = 0;
  uint64_t clock_ = 0;  ///< LRU stamp source
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  uint64_t evicted_bytes_ = 0;
  uint64_t spliced_ = 0;
  uint64_t refilled_nodes_ = 0;
  uint64_t repaired_entries_ = 0;
};

/// Approximate heap footprint of a materialised relation (set nodes plus
/// per-tuple span storage); the unit result entries are accounted in.
std::size_t ApproxRelationBytes(const SpanRelation& relation);

}  // namespace spanners
