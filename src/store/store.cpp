#include "store/store.hpp"

#include <algorithm>
#include <utility>

#include <sys/stat.h>

#include "engine/session.hpp"
#include "slp/avl_grammar.hpp"
#include "slp/cde.hpp"
#include "slp/slp_serialize.hpp"
#include "store/persist.hpp"
#include "util/flight_recorder.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace spanners {
namespace {

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

struct StoreMetrics {
  Counter& snapshots;
  Counter& commits;
  Counter& commit_errors;
  Counter& queries;
  Counter& gc_compactions;
  Counter& gc_reclaimed_nodes;
  Counter& wal_appends;
  Counter& wal_appended_bytes;
  Counter& wal_replay_records;
  Gauge& docs;
  Gauge& nodes_total;
  Gauge& nodes_live;
  Histogram& commit_ns;
  Histogram& wal_append_ns;
  Histogram& gc_pause_ns;
  Histogram& snapshot_save_ns;
  Histogram& snapshot_open_ns;

  static StoreMetrics& Get() {
    MetricsRegistry& registry = MetricsRegistry::Global();
    static StoreMetrics* metrics = new StoreMetrics{
        registry.GetCounter("store.snapshots"),
        registry.GetCounter("store.commits"),
        registry.GetCounter("store.commit_errors"),
        registry.GetCounter("store.queries"),
        registry.GetCounter("store.gc.compactions"),
        registry.GetCounter("store.gc.reclaimed_nodes"),
        registry.GetCounter("wal.appends"),
        registry.GetCounter("wal.appended_bytes"),
        registry.GetCounter("wal.replay.records"),
        registry.GetGauge("store.docs"),
        registry.GetGauge("store.nodes.total"),
        registry.GetGauge("store.nodes.live"),
        registry.GetHistogram("store.commit_ns"),
        registry.GetHistogram("wal.append_ns"),
        registry.GetHistogram("store.gc.pause_ns"),
        registry.GetHistogram("store.persist.snapshot_save_ns"),
        registry.GetHistogram("store.persist.snapshot_open_ns"),
    };
    return *metrics;
  }
};

}  // namespace

const StoreDoc* StoreSnapshot::Find(StoreDocId id) const {
  if (state_ == nullptr) return nullptr;
  const std::vector<StoreDoc>& docs = state_->docs;
  auto it = std::lower_bound(docs.begin(), docs.end(), id,
                             [](const StoreDoc& doc, StoreDocId want) {
                               return doc.id < want;
                             });
  return it != docs.end() && it->id == id ? &*it : nullptr;
}

/// The commit path's working view of the next version: CDE expressions name
/// documents by store id, so roots/live are dense tables indexed id - 1
/// (kNoNode is *also* a live empty document; liveness is tracked apart).
struct DocumentStore::PendingState {
  Slp* slp = nullptr;
  std::vector<NodeId> roots;  ///< roots[id - 1]; kNoNode = empty or dead
  std::vector<char> live;     ///< live[id - 1]
  StoreDocId next_doc_id = 1;
  /// Documents this batch edited, with their pre-batch roots (recorded on a
  /// document's first edit). Folded into the published version's splice
  /// records (StoreEditDelta) after the ops ran, so a document edited twice
  /// in one batch gets one delta spanning the whole batch.
  std::vector<std::pair<StoreDocId, NodeId>> edited;
};

DocumentStore::DocumentStore(StoreOptions options)
    : options_(options),
      cache_(std::make_shared<PreparedStateCache>(options.cache_budget_bytes)) {
  if (options_.threads == 0) options_.threads = 1;
  auto genesis = std::make_shared<StoreVersion>();
  genesis->epoch = std::make_shared<StoreEpoch>();
  genesis->cache = cache_;
  head_.Store(std::move(genesis));
}

DocumentStore::~DocumentStore() = default;

StoreSnapshot DocumentStore::Snapshot() const {
  ScopedSpan span("store.snapshot");
  if (MetricsEnabled()) StoreMetrics::Get().snapshots.Increment();
  return StoreSnapshot(head_.Load());
}

std::string DocumentStore::ApplyOp(PendingState* state, const StoreOp& op,
                                   std::vector<StoreDocId>* created) {
  auto is_live = [state](StoreDocId id) {
    return id >= 1 && id <= state->live.size() && state->live[id - 1] != 0;
  };
  auto add_doc = [state, created](NodeId root) {
    state->roots.push_back(root);
    state->live.push_back(1);
    created->push_back(state->next_doc_id);
    ++state->next_doc_id;
  };

  switch (op.kind) {
    case StoreOp::Kind::kInsertText:
      add_doc(BalancedFromString(*state->slp, op.payload));
      return {};

    case StoreOp::Kind::kCreateCde:
    case StoreOp::Kind::kEditCde: {
      if (op.kind == StoreOp::Kind::kEditCde && !is_live(op.doc)) {
        return "edit of unknown or dropped document D" + std::to_string(op.doc);
      }
      Expected<std::unique_ptr<CdeExpr>> parsed = ParseCdeChecked(op.payload);
      if (!parsed.ok()) return parsed.error();
      // The dense roots table cannot tell an empty document from a dropped
      // one, so dropped ids are rejected up front.
      for (std::size_t index : CdeDocumentRefs(**parsed)) {
        if (!is_live(index + 1)) {
          return "reference to unknown or dropped document D" +
                 std::to_string(index + 1);
        }
      }
      Expected<NodeId> root = EvalCdeOnChecked(state->slp, state->roots, **parsed);
      if (!root.ok()) return root.error();
      if (op.kind == StoreOp::Kind::kCreateCde) {
        add_doc(*root);
      } else {
        bool first_edit = true;
        for (const auto& [doc, unused] : state->edited) {
          if (doc == op.doc) first_edit = false;
        }
        if (first_edit) state->edited.push_back({op.doc, state->roots[op.doc - 1]});
        state->roots[op.doc - 1] = *root;
      }
      return {};
    }

    case StoreOp::Kind::kDrop:
      if (!is_live(op.doc)) {
        return "drop of unknown or dropped document D" + std::to_string(op.doc);
      }
      state->live[op.doc - 1] = 0;
      state->roots[op.doc - 1] = kNoNode;
      return {};
  }
  FatalError("DocumentStore::ApplyOp: unknown op kind");
}

Expected<CommitReceipt> DocumentStore::Commit(const WriteBatch& batch) {
  std::lock_guard<std::mutex> writer(commit_mutex_);
  return CommitLocked(batch, /*log_to_wal=*/true);
}

Expected<CommitReceipt> DocumentStore::CommitLocked(const WriteBatch& batch,
                                                    bool log_to_wal) {
  ScopedSpan span("store.commit");
  ScopedLatency latency(StoreMetrics::Get().commit_ns);
  const uint64_t commit_start = MetricsEnabled() ? NowNanos() : 0;

  const std::shared_ptr<const StoreVersion> current =
      head_.Load();

  // A mapped (frozen) epoch serves reads only: the first commit after a
  // persistent Open thaws it into a writable twin -- identical node ids
  // (roots stay valid), same epoch_uuid, fresh arena_id -- before any op
  // can append. Old snapshots keep pinning the mapped epoch until released.
  std::shared_ptr<StoreEpoch> epoch = current->epoch;
  if (epoch->slp.frozen()) {
    auto thawed = std::make_shared<StoreEpoch>();
    thawed->slp = SlpSerializer::Thaw(epoch->slp);
    // The thawed twin has identical node ids, so prepared state filled
    // against the mapped epoch stays valid -- rebind instead of dropping
    // (DESIGN.md §1.16). Old snapshots pin the mapped epoch itself.
    cache_->RebindArena(epoch->slp.arena_id(), thawed->slp.arena_id());
    epoch = std::move(thawed);
  }

  // Everything appended from here on is this batch's fresh-node interval;
  // the per-document dirty paths below are carved out of it.
  const NodeId batch_first_fresh = static_cast<NodeId>(epoch->slp.num_nodes());

  PendingState state;
  state.slp = &epoch->slp;
  state.next_doc_id = current->next_doc_id;
  state.roots.assign(state.next_doc_id - 1, kNoNode);
  state.live.assign(state.next_doc_id - 1, 0);
  for (const StoreDoc& doc : current->docs) {
    state.roots[doc.id - 1] = doc.root;
    state.live[doc.id - 1] = 1;
  }

  CommitReceipt receipt;
  for (const StoreOp& op : batch.ops()) {
    std::string diagnostic = ApplyOp(&state, op, &receipt.created);
    if (!diagnostic.empty()) {
      // All-or-nothing: nothing is published. Nodes already appended for
      // earlier ops of this batch are unreachable garbage for the next GC.
      if (MetricsEnabled()) StoreMetrics::Get().commit_errors.Increment();
      return Unexpected("store commit: " + diagnostic);
    }
  }

  // Durability point: the batch is logged (and fsync'd) *before* the version
  // it produces can be observed. Replay is record-by-record deterministic,
  // so a crash anywhere after this line reproduces exactly this commit.
  if (log_to_wal && wal_ != nullptr) {
    const std::string record = EncodeCommitRecord(current->version + 1, batch);
    const uint64_t append_start = MetricsEnabled() ? NowNanos() : 0;
    Status appended = wal_->Append(record, options_.wal_sync);
    if (!appended.ok()) {
      if (MetricsEnabled()) StoreMetrics::Get().commit_errors.Increment();
      return Unexpected("store commit: " + appended.message());
    }
    if (append_start != 0) {
      // The append+fsync latency IS the commit path's durability tax; its
      // histogram is what a p99-commit SLO watches.
      StoreMetrics& metrics = StoreMetrics::Get();
      metrics.wal_append_ns.Record(NowNanos() - append_start);
      metrics.wal_appends.Increment();
      metrics.wal_appended_bytes.Add(record.size());
    }
    wal_records_.fetch_add(1, std::memory_order_relaxed);
  }

  auto next = std::make_shared<StoreVersion>();
  for (StoreDocId id = 1; id < state.next_doc_id; ++id) {
    if (state.live[id - 1] != 0) next->docs.push_back({id, state.roots[id - 1]});
  }

  // Splice records: per surviving edited document, the fresh nodes its new
  // root reaches. O(fresh) per document -- the dirty path, not the document.
  for (const auto& [doc, old_root] : state.edited) {
    if (state.live[doc - 1] == 0) continue;  // edited, then dropped
    StoreEditDelta delta;
    delta.doc = doc;
    delta.old_root = old_root;
    delta.new_root = state.roots[doc - 1];
    delta.dirty =
        CollectFreshReachable(*state.slp, delta.new_root, batch_first_fresh);
    next->edits.push_back(std::move(delta));
  }

  std::vector<NodeId> roots;
  roots.reserve(next->docs.size());
  for (const StoreDoc& doc : next->docs) roots.push_back(doc.root);
  const std::vector<bool> seen = state.slp->MarkReachable(roots);
  std::size_t reachable = 0;
  for (bool bit : seen) reachable += bit ? 1 : 0;

  receipt.gc.before_nodes = seen.size();
  receipt.gc.live_nodes = reachable;
  const std::size_t garbage = seen.size() - reachable;
  if (garbage >= options_.gc_min_garbage_nodes && !seen.empty() &&
      static_cast<double>(garbage) >=
          options_.gc_min_garbage_ratio * static_cast<double>(seen.size())) {
    ScopedSpan gc_span("store.gc");
    const uint64_t gc_start = MetricsEnabled() ? NowNanos() : 0;
    auto fresh = std::make_shared<StoreEpoch>();
    std::vector<NodeId> remap;
    CompactSlp(*state.slp, &roots, &fresh->slp, &remap);
    for (std::size_t i = 0; i < next->docs.size(); ++i) {
      next->docs[i].root = roots[i];
    }
    // Rewrite this commit's splice records into the compacted arena so the
    // first post-GC re-query still splice-repairs instead of refilling.
    auto remap_node = [&remap](NodeId node) {
      return node != kNoNode && node < remap.size() ? remap[node] : kNoNode;
    };
    for (StoreEditDelta& delta : next->edits) {
      delta.old_root = remap_node(delta.old_root);  // usually reclaimed
      delta.new_root = remap_node(delta.new_root);
      std::vector<NodeId> dirty;
      dirty.reserve(delta.dirty.size());
      for (const NodeId node : delta.dirty) {
        if (const NodeId moved = remap_node(node); moved != kNoNode) {
          dirty.push_back(moved);
        }
      }
      // Hash-consing can merge and reorder ids; restore the ascending
      // (children-before-parents) order RefillPath consumes.
      std::sort(dirty.begin(), dirty.end());
      dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
      delta.dirty = std::move(dirty);
    }
    // Carry the superseded generation's prepared state across the
    // compaction through the old->new mapping instead of dropping it; old
    // snapshots pin the epoch itself until released (DESIGN.md §1.16).
    cache_->RemapArena(epoch->slp.arena_id(), fresh->slp.arena_id(), remap);
    epoch = std::move(fresh);
    receipt.gc.compacted = true;
    gc_compactions_.fetch_add(1, std::memory_order_relaxed);
    gc_reclaimed_nodes_.fetch_add(garbage, std::memory_order_relaxed);
    if (gc_start != 0) {
      // Compaction runs under the writer lock, so its wall time is a commit
      // pause -- the store's stop-the-world equivalent.
      const uint64_t pause_ns = NowNanos() - gc_start;
      StoreMetrics::Get().gc_compactions.Increment();
      StoreMetrics::Get().gc_reclaimed_nodes.Add(garbage);
      StoreMetrics::Get().gc_pause_ns.Record(pause_ns);
      FlightEvent event;
      event.kind = FlightEvent::Kind::kGc;
      event.duration_ns = pause_ns;
      event.detail = garbage;
      FlightRecorder::Global().Record(event);
    }
  }

  next->version = current->version + 1;
  next->epoch = epoch;
  next->next_doc_id = state.next_doc_id;
  next->reachable_nodes = reachable;
  next->cache = cache_;
  receipt.version = next->version;

  if (receipt.gc.compacted && log_to_wal && !persist_dir_.empty()) {
    // Log compaction rides on GC: the compacted state becomes the new
    // snapshot blob and the commit log restarts at it. Failure is non-fatal
    // -- the previous blob plus the full log still reproduce this version
    // (records carry batches, never node ids, so GC's renumbering is moot).
    (void)SaveSnapshotLocked(persist_dir_, next);
  }

  const std::size_t num_docs = next->docs.size();
  const std::size_t arena_nodes = epoch->slp.num_nodes();
  // Pre-publication: the observer records the version before any reader can
  // load it, so a recorded observation of it always has a commit record.
  if (commit_observer_) commit_observer_(StoreSnapshot(next));
  head_.Store(std::move(next));
  commits_.fetch_add(1, std::memory_order_relaxed);
  if (commit_start != 0) {
    StoreMetrics& metrics = StoreMetrics::Get();
    metrics.commits.Increment();
    metrics.docs.Set(static_cast<int64_t>(num_docs));
    metrics.nodes_total.Set(static_cast<int64_t>(arena_nodes));
    metrics.nodes_live.Set(static_cast<int64_t>(reachable));
    FlightEvent event;
    event.kind = FlightEvent::Kind::kCommit;
    event.duration_ns = NowNanos() - commit_start;
    event.detail = receipt.version;
    FlightRecorder::Global().Record(event);
  }
  return receipt;
}

Status DocumentStore::SaveSnapshot(const std::string& dir) {
  std::lock_guard<std::mutex> writer(commit_mutex_);
  return SaveSnapshotLocked(dir, head_.Load());
}

Status DocumentStore::SaveSnapshotLocked(
    const std::string& dir, const std::shared_ptr<const StoreVersion>& version) {
  if (Status status = EnsureDirectory(dir); !status.ok()) return status;
  ScopedLatency save_latency(StoreMetrics::Get().snapshot_save_ns);
  if (store_uuid_ == 0) store_uuid_ = NewStoreUuid();
  BlobWriter blob;
  AppendStoreSections(*version, store_uuid_, &blob);
  SlpSerializer::AppendSections(version->epoch->slp, &blob);
  if (Status status = blob.WriteFile(SnapshotPath(dir)); !status.ok()) {
    return status;
  }
  if (dir == persist_dir_) {
    // The blob now covers every logged record (they all have version <=
    // version->version), so the log restarts at the snapshot. A crash
    // between the rename above and this restart is safe either way: replay
    // skips records the blob already covers.
    Expected<LogWriter> wal = LogWriter::Create(
        WalPath(dir), EncodeWalHeader(store_uuid_, version->version));
    if (!wal.ok()) return wal.status();
    wal_ = std::make_unique<LogWriter>(std::move(*wal));
  }
  return Status::Ok();
}

Expected<std::unique_ptr<DocumentStore>> DocumentStore::Open(
    const std::string& dir, StoreOptions options) {
  if (Status status = EnsureDirectory(dir); !status.ok()) return status;
  auto store = std::make_unique<DocumentStore>(options);
  std::lock_guard<std::mutex> writer(store->commit_mutex_);
  store->persist_dir_ = dir;

  const std::string snapshot_path = SnapshotPath(dir);
  const std::string wal_path = WalPath(dir);
  if (!FileExists(snapshot_path)) {
    if (FileExists(wal_path)) {
      // Open never creates a log without its blob, so an orphaned log means
      // the directory was tampered with -- refuse rather than guess a base.
      return Unexpected("store open: " + dir +
                        " has a commit log but no snapshot blob");
    }
    // Fresh store: mint an identity and establish both files.
    store->store_uuid_ = NewStoreUuid();
    if (Status status = store->SaveSnapshotLocked(dir, store->head_.Load());
        !status.ok()) {
      return status;
    }
    return store;
  }

  const uint64_t open_start = MetricsEnabled() ? NowNanos() : 0;
  Expected<std::shared_ptr<MappedBlob>> blob = MappedBlob::Open(snapshot_path);
  if (!blob.ok()) return blob.status();
  if (options.verify_checksums) {
    if (Status status = (*blob)->VerifyAll(); !status.ok()) return status;
  }
  Expected<StoreSnapshotImage> image = ParseStoreSections(**blob);
  if (!image.ok()) return image.status();
  Expected<Slp> slp = options.map_snapshot
                          ? SlpSerializer::FromBlobMapped(*blob)
                          : SlpSerializer::FromBlobMaterialized(**blob);
  if (!slp.ok()) return slp.status();
  if (open_start != 0) {
    StoreMetrics::Get().snapshot_open_ns.Record(NowNanos() - open_start);
  }

  store->store_uuid_ = image->store_uuid;
  auto loaded = std::make_shared<StoreVersion>();
  loaded->version = image->version;
  loaded->epoch = std::make_shared<StoreEpoch>();
  loaded->epoch->slp = std::move(*slp);
  loaded->docs = std::move(image->docs);
  loaded->next_doc_id = image->next_doc_id;
  loaded->reachable_nodes = image->reachable_nodes;
  loaded->cache = store->cache_;
  store->head_.Store(std::move(loaded));

  const uint64_t blob_version = image->version;
  if (!FileExists(wal_path)) {
    // The crash window of SaveSnapshot: blob renamed, log restart lost.
    // Everything durable is in the blob; start a fresh log at its version.
    Expected<LogWriter> wal = LogWriter::Create(
        wal_path, EncodeWalHeader(store->store_uuid_, blob_version));
    if (!wal.ok()) return wal.status();
    store->wal_ = std::make_unique<LogWriter>(std::move(*wal));
    return store;
  }

  Expected<LogContents> log = ReadLog(wal_path);
  if (!log.ok()) {
    // An unreadable log *header* can only be a torn LogWriter::Create (the
    // header is fsync'd before any record can be appended, so a log that
    // ever held a durable record has a durable header). Start over at the
    // blob's version.
    Expected<LogWriter> wal = LogWriter::Create(
        wal_path, EncodeWalHeader(store->store_uuid_, blob_version));
    if (!wal.ok()) return wal.status();
    store->wal_ = std::make_unique<LogWriter>(std::move(*wal));
    return store;
  }
  Expected<WalHeader> header = DecodeWalHeader(log->header_payload);
  if (!header.ok()) return header.status();
  if (header->store_uuid != store->store_uuid_) {
    return Unexpected("store open: commit log belongs to a different store "
                      "lineage than the snapshot blob");
  }
  for (const LogRecord& record : log->records) {
    Expected<WalCommit> commit = DecodeCommitRecord(record.payload);
    if (!commit.ok()) return commit.status();
    const uint64_t head_version = store->head_.Load()->version;
    if (commit->version <= head_version) continue;  // covered by the blob
    if (commit->version != head_version + 1) {
      return Unexpected("store open: commit log skips version " +
                        std::to_string(head_version + 1));
    }
    Expected<CommitReceipt> replayed =
        store->CommitLocked(commit->batch, /*log_to_wal=*/false);
    if (!replayed.ok()) {
      return Unexpected("store open: commit-log replay failed: " +
                        replayed.error());
    }
    if (MetricsEnabled()) StoreMetrics::Get().wal_replay_records.Increment();
  }
  // Keep appending where the durable prefix ends (dropping any torn tail a
  // crashed writer left mid-append).
  Expected<LogWriter> wal = LogWriter::Resume(wal_path, log->durable_bytes);
  if (!wal.ok()) return wal.status();
  store->wal_ = std::make_unique<LogWriter>(std::move(*wal));
  return store;
}

void DocumentStore::SetCommitObserverForTesting(
    std::function<void(const StoreSnapshot&)> observer) {
  // The writer lock keeps the swap from racing an in-flight commit's call.
  std::lock_guard<std::mutex> writer(commit_mutex_);
  commit_observer_ = std::move(observer);
}

Expected<StoreDocId> DocumentStore::InsertDocument(std::string text) {
  WriteBatch batch;
  batch.Insert(std::move(text));
  Expected<CommitReceipt> receipt = Commit(batch);
  if (!receipt.ok()) return receipt.status();
  return receipt->created.front();
}

Expected<StoreDocId> DocumentStore::CreateDocument(std::string cde) {
  WriteBatch batch;
  batch.Create(std::move(cde));
  Expected<CommitReceipt> receipt = Commit(batch);
  if (!receipt.ok()) return receipt.status();
  return receipt->created.front();
}

Status DocumentStore::EditDocument(StoreDocId doc, std::string cde) {
  WriteBatch batch;
  batch.Edit(doc, std::move(cde));
  Expected<CommitReceipt> receipt = Commit(batch);
  return receipt.ok() ? Status::Ok() : receipt.status();
}

Status DocumentStore::DropDocument(StoreDocId doc) {
  WriteBatch batch;
  batch.Drop(doc);
  Expected<CommitReceipt> receipt = Commit(batch);
  return receipt.ok() ? Status::Ok() : receipt.status();
}

std::vector<Expected<SpanRelation>> DocumentStore::QueryAll(
    Session& session, const CompiledQuery& query, const StoreSnapshot& snapshot) {
  ScopedSpan span("store.query_all");
  const std::vector<StoreDoc>& docs = snapshot.documents();
  std::vector<Expected<SpanRelation>> results(docs.size(),
                                              Status::Error("not evaluated"));
  if (docs.empty()) return results;
  auto evaluate_one = [&](std::size_t i) {
    if (MetricsEnabled()) StoreMetrics::Get().queries.Increment();
    ScopedSpan query_span("store.query");
    results[i] = cache_->Evaluate(session, query, snapshot, docs[i].id);
  };
  if (options_.threads <= 1 || docs.size() == 1) {
    for (std::size_t i = 0; i < docs.size(); ++i) evaluate_one(i);
    return results;
  }
  std::call_once(pool_once_,
                 [this] { pool_ = std::make_unique<ThreadPool>(options_.threads); });
  // Size-aware scheduling (LPT): dispatch documents longest-first with a
  // claim chunk of 1. Round-robin contiguous chunks would let one huge
  // document serialize the tail of its chunk behind it; longest-first +
  // single-index claims bound the makespan at (largest doc) + (fair share).
  std::vector<std::pair<uint64_t, std::size_t>> order(docs.size());
  for (std::size_t i = 0; i < docs.size(); ++i) {
    const NodeId root = docs[i].root;
    order[i] = {root == kNoNode ? 0 : snapshot.slp().Length(root), i};
  }
  std::stable_sort(order.begin(), order.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });
  pool_->ParallelForChunked(0, docs.size(), 1, [&](std::size_t i) {
    evaluate_one(order[i].second);
  });
  return results;
}

StoreStats DocumentStore::Stats() const {
  const StoreSnapshot snapshot(head_.Load());
  StoreStats stats;
  stats.version = snapshot.version();
  stats.num_documents = snapshot.num_documents();
  stats.arena_nodes = snapshot.empty() ? 0 : snapshot.slp().num_nodes();
  stats.reachable_nodes = snapshot.reachable_nodes();
  stats.commits = commits_.load(std::memory_order_relaxed);
  stats.gc_compactions = gc_compactions_.load(std::memory_order_relaxed);
  stats.gc_reclaimed_nodes = gc_reclaimed_nodes_.load(std::memory_order_relaxed);
  stats.epoch_uuid = snapshot.empty() ? 0 : snapshot.slp().epoch_uuid();
  stats.epoch_frozen = !snapshot.empty() && snapshot.slp().frozen();
  stats.wal_records = wal_records_.load(std::memory_order_relaxed);
  stats.cache = cache_->stats();
  return stats;
}

}  // namespace spanners
