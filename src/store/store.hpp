/// \file store.hpp
/// \brief The concurrent, snapshot-isolated document store (DESIGN.md §1.10).
///
/// A DocumentStore is the serving layer over the library's compressed
/// document machinery: one shared SLP grammar pool (the *epoch*), a set of
/// live documents identified by stable StoreDocIds, a single-writer commit
/// path applying batched CDE expressions (paper §4.3, O(|φ| log d) each),
/// and a lock-free snapshot read path. The moving parts:
///
///   Snapshot()   one atomic shared_ptr load; the returned StoreSnapshot is
///                an immutable version (number + then-live roots) readers
///                evaluate against concurrently with any number of commits.
///   Commit()     serialised on the writer mutex: applies the batch's ops
///                against the current roots, appends fresh nodes to the
///                shared arena (readers never see them until...), publishes
///                a new version, and bumps the version number. All-or-
///                nothing: a failing op publishes nothing -- nodes already
///                appended become garbage for the next GC.
///   GC           generational: when a commit leaves enough garbage
///                (StoreOptions thresholds), the reachable sub-DAG is
///                compacted into a fresh epoch (slp.hpp CompactSlp); old
///                snapshots pin the old epoch until they are released, then
///                the whole superseded generation frees at once.
///   Cache        a byte-budgeted PreparedStateCache shared by all versions;
///                entries are keyed by immutable roots, so documents
///                untouched by a commit keep their cached state.
///
/// In the paper's terms: the store maintains the document database 𝔇 of
/// Section 4 under complex document editing, serving each query from the
/// §4.2 Boolean-matrix evaluation with everything expensive cached.
///
/// Durability (DESIGN.md §1.13): a store opened with Open(dir) is
/// *persistent* -- every Commit appends its batch to a write-ahead log
/// before publishing, GC compactions roll the state into a fresh snapshot
/// blob (store/persist.hpp), and reopening the directory maps the blob
/// zero-copy (O(size-of-header) before the first query), replays the log
/// tail, and recovers from torn writes by truncating to the durable prefix.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "store/prepared_cache.hpp"
#include "store/snapshot.hpp"
#include "util/common.hpp"
#include "util/thread_pool.hpp"

// ThreadSanitizer detection (GCC defines __SANITIZE_THREAD__; clang exposes
// __has_feature(thread_sanitizer)).
#if defined(__SANITIZE_THREAD__)
#define SPANNERS_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SPANNERS_TSAN_BUILD 1
#endif
#endif

namespace spanners {

class Session;
class CompiledQuery;
class LogWriter;

/// The head-version publication cell. Normally std::atomic<std::shared_ptr>:
/// Snapshot() is one lock-free load, commits publish with a release store.
/// Under TSan the libstdc++ implementation is a false positive by
/// construction -- _Sp_atomic::load reads its raw pointer under an internal
/// spin bit but releases it with a *relaxed* fetch_sub, so the mutual
/// exclusion is real while the happens-before edge TSan needs is not
/// expressed -- so sanitizer builds swap in a mutex, keeping the rest of the
/// store's concurrency (arena publication, cache, commit/GC) verifiable.
class HeadCell {
 public:
  std::shared_ptr<const StoreVersion> Load() const {
#ifdef SPANNERS_TSAN_BUILD
    std::lock_guard<std::mutex> lock(mutex_);
    return head_;
#else
    return head_.load(std::memory_order_acquire);
#endif
  }

  void Store(std::shared_ptr<const StoreVersion> next) {
#ifdef SPANNERS_TSAN_BUILD
    std::lock_guard<std::mutex> lock(mutex_);
    head_ = std::move(next);
#else
    head_.store(std::move(next), std::memory_order_release);
#endif
  }

 private:
#ifdef SPANNERS_TSAN_BUILD
  mutable std::mutex mutex_;
  std::shared_ptr<const StoreVersion> head_;
#else
  std::atomic<std::shared_ptr<const StoreVersion>> head_;
#endif
};

/// Store construction knobs.
struct StoreOptions {
  /// Budget of the prepared-state cache (results + matrix caches).
  std::size_t cache_budget_bytes = std::size_t{64} << 20;

  /// GC: compact when garbage / total >= ratio AND garbage >= min nodes.
  /// Tests force eager GC with {0.0, 1}; ratio > 1.0 disables GC.
  double gc_min_garbage_ratio = 0.5;
  std::size_t gc_min_garbage_nodes = 1024;

  /// Worker threads for QueryAll (>= 1; 1 = sequential).
  std::size_t threads = ThreadPool::DefaultThreadCount();

  // --- persistence (stores opened with DocumentStore::Open) -----------------

  /// fsync every commit-log append before the commit publishes (the
  /// durability point). Off trades the unsynced tail for bulk-load speed.
  bool wal_sync = true;

  /// Verify every snapshot-blob section checksum at Open -- O(file size)
  /// instead of the default lazy header-only validation (O(size-of-header)).
  bool verify_checksums = false;

  /// Back the reopened epoch zero-copy by the snapshot mapping; the arena
  /// stays frozen (read-only) until the first commit thaws it. Off
  /// materializes a writable arena eagerly at Open (O(nodes)).
  bool map_snapshot = true;
};

/// One mutation of a WriteBatch.
struct StoreOp {
  enum class Kind : uint8_t { kInsertText, kCreateCde, kEditCde, kDrop };
  Kind kind = Kind::kInsertText;
  StoreDocId doc = 0;    ///< kEditCde / kDrop target
  std::string payload;   ///< text (kInsertText) or CDE expression source
};

/// A batch of mutations applied atomically by Commit(): either every op
/// succeeds and one new version is published, or none is. CDE expressions
/// name documents by store id ("D7" = StoreDocId 7) and see the effects of
/// earlier ops in the same batch.
class WriteBatch {
 public:
  /// Creates a document from plain text (AVL-balanced build).
  void Insert(std::string text) {
    ops_.push_back({StoreOp::Kind::kInsertText, 0, std::move(text)});
  }

  /// Creates a document as eval(φ) of a CDE expression.
  void Create(std::string cde) {
    ops_.push_back({StoreOp::Kind::kCreateCde, 0, std::move(cde)});
  }

  /// Replaces document \p doc with eval(φ).
  void Edit(StoreDocId doc, std::string cde) {
    ops_.push_back({StoreOp::Kind::kEditCde, doc, std::move(cde)});
  }

  /// Removes document \p doc (its id is never reused).
  void Drop(StoreDocId doc) { ops_.push_back({StoreOp::Kind::kDrop, doc, {}}); }

  const std::vector<StoreOp>& ops() const { return ops_; }
  bool empty() const { return ops_.empty(); }
  std::size_t size() const { return ops_.size(); }

 private:
  std::vector<StoreOp> ops_;
};

/// What one commit's GC pass did.
struct GcStats {
  bool compacted = false;        ///< a fresh epoch was built
  std::size_t before_nodes = 0;  ///< arena size going in
  std::size_t live_nodes = 0;    ///< reachable from the new version's roots
  std::size_t reclaimed_nodes() const { return before_nodes - live_nodes; }
};

/// The outcome of a successful Commit().
struct CommitReceipt {
  uint64_t version = 0;               ///< the newly published version
  std::vector<StoreDocId> created;    ///< ids of Insert/Create ops, in order
  GcStats gc;
};

/// Aggregate store statistics (point-in-time).
struct StoreStats {
  uint64_t version = 0;
  std::size_t num_documents = 0;
  std::size_t arena_nodes = 0;      ///< current epoch's node count
  std::size_t reachable_nodes = 0;  ///< restricted to the live roots
  uint64_t commits = 0;
  uint64_t gc_compactions = 0;
  uint64_t gc_reclaimed_nodes = 0;
  uint64_t epoch_uuid = 0;     ///< durable identity of the current epoch
  bool epoch_frozen = false;   ///< current epoch still mapped read-only
  uint64_t wal_records = 0;    ///< commit-log records appended since attach
  PreparedCacheStats cache;
};

/// The store. Thread safety: Snapshot(), Stats(), cache() and QueryAll()
/// may be called from any thread at any time; Commit() (and the
/// convenience mutators) serialise on an internal writer mutex.
class DocumentStore {
 public:
  explicit DocumentStore(StoreOptions options = {});
  ~DocumentStore();

  DocumentStore(const DocumentStore&) = delete;
  DocumentStore& operator=(const DocumentStore&) = delete;

  /// Opens (or initializes) the persistent store at directory \p dir and
  /// attaches to it: the snapshot blob is mapped (lazily -- O(size-of-
  /// header) before the first query), commit-log records past the blob's
  /// version are replayed, the torn log tail (if the previous process
  /// crashed mid-append) is truncated, and every subsequent Commit appends
  /// to the log before publishing. A missing or empty directory starts a
  /// fresh store (new store_uuid) and writes its initial snapshot.
  static Expected<std::unique_ptr<DocumentStore>> Open(const std::string& dir,
                                                       StoreOptions options = {});

  /// Writes the current version as a snapshot blob into \p dir (created if
  /// missing; atomic tmp+rename). When \p dir is the attached directory,
  /// the commit log restarts at the saved version (log compaction). Any
  /// store -- attached or ephemeral -- can be saved anywhere.
  Status SaveSnapshot(const std::string& dir);

  /// Durable store identity: minted when a store first touches disk,
  /// preserved by save/open, and stamped into both files of the directory
  /// (Open refuses a commit log from a different lineage).
  uint64_t store_uuid() const { return store_uuid_; }

  /// The current version; one atomic load, never blocks on the writer.
  StoreSnapshot Snapshot() const;

  /// Applies \p batch atomically and publishes a new version. Errors (parse
  /// failures, unknown or dropped documents, positions out of range) leave
  /// the published state untouched.
  Expected<CommitReceipt> Commit(const WriteBatch& batch);

  // --- single-op conveniences (each is one Commit) --------------------------

  Expected<StoreDocId> InsertDocument(std::string text);
  Expected<StoreDocId> CreateDocument(std::string cde);
  Status EditDocument(StoreDocId doc, std::string cde);
  Status DropDocument(StoreDocId doc);

  /// Evaluates \p query over every document of \p snapshot on the store's
  /// thread pool; results are index-aligned with snapshot.documents().
  /// Cached prepared state is shared across the fan-out.
  std::vector<Expected<SpanRelation>> QueryAll(Session& session,
                                               const CompiledQuery& query,
                                               const StoreSnapshot& snapshot);

  PreparedStateCache& cache() { return *cache_; }

  /// Testing-only: \p observer is invoked inside the writer lock with every
  /// about-to-be-published version, *before* readers can load it -- so the
  /// observer's commit log always precedes any observation of that version
  /// (the ordering the SnapshotIsolationChecker of src/testing/ relies on).
  /// The observer must not call back into the store. Pass nullptr to clear.
  void SetCommitObserverForTesting(std::function<void(const StoreSnapshot&)> observer);

  StoreStats Stats() const;

  const StoreOptions& options() const { return options_; }

 private:
  /// Mutable commit-path state derived from the current version.
  struct PendingState;

  /// Applies one op to \p state; returns a diagnostic ("" = ok).
  std::string ApplyOp(PendingState* state, const StoreOp& op,
                      std::vector<StoreDocId>* created);

  /// The commit path proper; commit_mutex_ must be held. \p log_to_wal is
  /// false only while Open replays the commit log (the records are already
  /// durable) -- replay also never writes snapshots.
  Expected<CommitReceipt> CommitLocked(const WriteBatch& batch, bool log_to_wal);

  /// SaveSnapshot with commit_mutex_ held (Commit's GC path and Open's
  /// initialization call this directly).
  Status SaveSnapshotLocked(const std::string& dir,
                            const std::shared_ptr<const StoreVersion>& version);

  StoreOptions options_;
  std::shared_ptr<PreparedStateCache> cache_;
  std::mutex commit_mutex_;  ///< the single writer
  std::function<void(const StoreSnapshot&)> commit_observer_;  ///< guarded by commit_mutex_
  uint64_t store_uuid_ = 0;        ///< 0 until the store first touches disk
  std::string persist_dir_;        ///< empty = ephemeral store
  std::unique_ptr<LogWriter> wal_; ///< guarded by commit_mutex_
  std::atomic<uint64_t> wal_records_{0};
  HeadCell head_;
  std::atomic<uint64_t> commits_{0};
  std::atomic<uint64_t> gc_compactions_{0};
  std::atomic<uint64_t> gc_reclaimed_nodes_{0};
  std::once_flag pool_once_;
  std::unique_ptr<ThreadPool> pool_;  ///< created lazily for QueryAll
};

}  // namespace spanners
