/// \file snapshot.hpp
/// \brief Snapshot isolation over the shared SLP grammar pool (DESIGN.md
/// §1.10).
///
/// SLP nodes are immutable DAG entries, so a consistent view of the store
/// is nothing more than *which version you looked at*: a StoreSnapshot is a
/// version number plus the then-live document roots, wrapped around a
/// shared epoch arena. Taking one is a single atomic shared_ptr load on the
/// read path (DocumentStore::Snapshot); holding one pins its epoch -- and
/// therefore every node any of its roots reaches -- for as long as the
/// snapshot lives, while the single-writer commit path keeps appending
/// fresh nodes to the same arena. Readers of a snapshot observe
/// byte-identical documents no matter how many commits happen concurrently.
///
/// Generations: a commit whose garbage crosses the GC threshold compacts
/// the reachable sub-DAG into a *new* epoch (fresh arena). Old snapshots
/// keep the old epoch alive through their shared_ptr; when the last one is
/// released, the whole superseded generation is reclaimed at once.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "slp/slp.hpp"
#include "util/common.hpp"

namespace spanners {

class PreparedStateCache;

/// Stable document identity: ids are assigned from 1 on creation and never
/// reused, so "D7" names the same logical document across edits, versions,
/// and GC generations (its *root* changes on every edit).
using StoreDocId = uint64_t;

/// One generation of the grammar pool. The arena follows the Slp
/// concurrency contract: the store's commit path is the single writer,
/// snapshot readers only dereference ids published to them.
struct StoreEpoch {
  Slp slp;
};

/// One live document of a version.
struct StoreDoc {
  StoreDocId id = 0;
  NodeId root = kNoNode;  ///< kNoNode derives the empty document
};

/// The splice record of one edited document: which nodes the publishing
/// commit freshly created under the document's new root (its *dirty path*,
/// ascending = children before parents). The prepared-state cache uses it
/// to repair matrix state along the path instead of re-discovering the
/// whole subtree (DESIGN.md §1.16). Carried by the version the commit
/// published only -- a dirty path is meaningful relative to the immediately
/// preceding version, so later versions do not inherit it.
struct StoreEditDelta {
  StoreDocId doc = 0;
  NodeId old_root = kNoNode;   ///< the document's root before the commit
  NodeId new_root = kNoNode;   ///< ... and after (kNoNode = now empty)
  std::vector<NodeId> dirty;   ///< fresh nodes reachable from new_root
};

/// The immutable state published by one commit (internal to the store and
/// its snapshots; readers go through StoreSnapshot).
struct StoreVersion {
  uint64_t version = 0;
  std::shared_ptr<StoreEpoch> epoch;
  std::vector<StoreDoc> docs;  ///< sorted by id
  StoreDocId next_doc_id = 1;
  std::size_t reachable_nodes = 0;  ///< |S| restricted to the live roots
  std::vector<StoreEditDelta> edits;  ///< splice records of *this* commit
  std::shared_ptr<PreparedStateCache> cache;  ///< shared with the store
};

/// A consistent, immutable view of the store at one version. Cheap to copy;
/// safe to use from any thread, concurrently with commits. An empty
/// (default-constructed) snapshot contains no documents.
class StoreSnapshot {
 public:
  StoreSnapshot() = default;
  explicit StoreSnapshot(std::shared_ptr<const StoreVersion> state)
      : state_(std::move(state)) {}

  bool empty() const { return state_ == nullptr; }

  uint64_t version() const { return state_ == nullptr ? 0 : state_->version; }

  std::size_t num_documents() const {
    return state_ == nullptr ? 0 : state_->docs.size();
  }

  /// The live documents, sorted by id.
  const std::vector<StoreDoc>& documents() const {
    static const std::vector<StoreDoc> kEmpty;
    return state_ == nullptr ? kEmpty : state_->docs;
  }

  /// The shared grammar pool of this snapshot's generation.
  /// Require: !empty().
  const Slp& slp() const {
    Require(state_ != nullptr, "StoreSnapshot::slp: empty snapshot");
    return state_->epoch->slp;
  }

  bool Contains(StoreDocId id) const { return Find(id) != nullptr; }

  /// The root of document \p id. Require: Contains(id).
  NodeId RootOf(StoreDocId id) const {
    const StoreDoc* doc = Find(id);
    Require(doc != nullptr, "StoreSnapshot::RootOf: unknown document");
    return doc->root;
  }

  /// |D(id)|. Require: Contains(id).
  uint64_t LengthOf(StoreDocId id) const {
    const NodeId root = RootOf(id);
    return root == kNoNode ? 0 : slp().Length(root);
  }

  /// Materialises document \p id. Require: Contains(id).
  std::string Text(StoreDocId id) const {
    const NodeId root = RootOf(id);
    return root == kNoNode ? std::string() : slp().Derive(root);
  }

  /// Nodes reachable from this version's live roots (|S| restricted to 𝔇).
  std::size_t reachable_nodes() const {
    return state_ == nullptr ? 0 : state_->reachable_nodes;
  }

  /// The splice record of document \p id if the commit that published this
  /// version edited it, else nullptr. The prepared-state cache consults this
  /// to pick path-splice repair over a whole-subtree fill.
  const StoreEditDelta* EditDeltaFor(StoreDocId id) const {
    if (state_ == nullptr) return nullptr;
    for (const StoreEditDelta& delta : state_->edits) {
      if (delta.doc == id) return &delta;
    }
    return nullptr;
  }

  /// The store's prepared-state cache (shared across versions), or null for
  /// an empty snapshot. Session::Evaluate(query, snapshot, doc) goes
  /// through this.
  PreparedStateCache* cache() const {
    return state_ == nullptr ? nullptr : state_->cache.get();
  }

  /// The epoch handle (pins the arena; prepared_cache.cpp keeps it alive
  /// across an evaluation).
  std::shared_ptr<StoreEpoch> epoch() const {
    return state_ == nullptr ? nullptr : state_->epoch;
  }

 private:
  const StoreDoc* Find(StoreDocId id) const;

  std::shared_ptr<const StoreVersion> state_;
};

}  // namespace spanners
