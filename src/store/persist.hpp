/// \file persist.hpp
/// \brief On-disk encoding of store snapshots and the commit log (DESIGN.md
/// §1.13).
///
/// A persistent store directory holds exactly two files:
///
///   snapshot.spb   one blob (util/blob_io.hpp) with four sections --
///                  "store.meta" (identity + version counters),
///                  "store.docs" (the live (id, root) table), and the
///                  "slp.meta"/"slp.nodes" sections written by
///                  SlpSerializer (slp/slp_serialize.hpp).
///   wal.splog      the write-ahead commit log: a header naming the store
///                  lineage (store_uuid) and the snapshot version it
///                  extends, then one record per committed WriteBatch.
///
/// The pairing rule recovery relies on: a log record carries the version
/// its commit published, and DocumentStore::Open replays only records with
/// version > the blob's version. That makes the snapshot-then-truncate
/// sequence crash-safe at every byte: an old log next to a new blob is
/// skipped, a torn log header (the header is fsync'd before any record can
/// be appended) implies the log never held durable records.
///
/// Records serialize the *batch*, not the resulting roots -- CDE evaluation
/// is deterministic, so replaying batches against the blob state reproduces
/// every document byte-for-byte while staying independent of node ids
/// (which GC rewrites freely between snapshots).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "store/snapshot.hpp"
#include "store/store.hpp"
#include "util/blob_io.hpp"
#include "util/common.hpp"

namespace spanners {

/// Blob section names of the store layer (the SLP sections are named by
/// slp/slp_serialize.hpp).
inline constexpr const char* kStoreMetaSection = "store.meta";
inline constexpr const char* kStoreDocsSection = "store.docs";

/// File names inside a store directory.
inline constexpr const char* kSnapshotFileName = "snapshot.spb";
inline constexpr const char* kWalFileName = "wal.splog";

std::string SnapshotPath(const std::string& dir);
std::string WalPath(const std::string& dir);

/// Creates \p dir (and missing parents). Idempotent.
Status EnsureDirectory(const std::string& dir);

/// A fresh, globally unique store identity (written once at first save and
/// carried by both files of the directory ever after).
uint64_t NewStoreUuid();

/// The decoded "store.meta" + "store.docs" sections of a snapshot blob.
struct StoreSnapshotImage {
  uint64_t store_uuid = 0;
  uint64_t version = 0;
  StoreDocId next_doc_id = 1;
  std::size_t reachable_nodes = 0;  ///< saved so a mapped open stays O(header)
  std::vector<StoreDoc> docs;       ///< sorted by id
};

/// Appends the "store.meta" and "store.docs" sections of \p version to
/// \p writer. Deterministic (the byte-identical re-save property).
void AppendStoreSections(const StoreVersion& version, uint64_t store_uuid,
                         BlobWriter* writer);

/// Decodes and checksum-verifies the store sections of \p blob. O(docs).
Expected<StoreSnapshotImage> ParseStoreSections(const MappedBlob& blob);

/// The decoded commit-log header.
struct WalHeader {
  uint64_t store_uuid = 0;
  uint64_t base_version = 0;  ///< version of the snapshot the log extends
};

std::string EncodeWalHeader(uint64_t store_uuid, uint64_t base_version);
Expected<WalHeader> DecodeWalHeader(std::string_view payload);

/// One decoded commit-log record: the batch that commit applied and the
/// version it published.
struct WalCommit {
  uint64_t version = 0;
  WriteBatch batch;
};

std::string EncodeCommitRecord(uint64_t version, const WriteBatch& batch);
Expected<WalCommit> DecodeCommitRecord(std::string_view payload);

}  // namespace spanners
