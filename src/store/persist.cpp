#include "store/persist.hpp"

#include <atomic>
#include <chrono>
#include <cerrno>

#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

namespace spanners {
namespace {

constexpr uint32_t kStoreSectionFormat = 1;
constexpr uint32_t kWalHeaderFormat = 1;
constexpr uint32_t kWalRecordFormat = 1;

/// On-disk op kinds. Pinned independently of the StoreOp::Kind enumerator
/// values so a future enum reorder cannot silently change the format.
constexpr uint8_t kWalOpInsertText = 0;
constexpr uint8_t kWalOpCreateCde = 1;
constexpr uint8_t kWalOpEditCde = 2;
constexpr uint8_t kWalOpDrop = 3;

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

std::string SnapshotPath(const std::string& dir) {
  return dir + "/" + kSnapshotFileName;
}

std::string WalPath(const std::string& dir) { return dir + "/" + kWalFileName; }

Status EnsureDirectory(const std::string& dir) {
  if (dir.empty()) return Status::Error("persist: empty directory path");
  // mkdir -p: create each component, tolerating the ones that exist.
  for (std::size_t slash = dir.find('/', 1); ; slash = dir.find('/', slash + 1)) {
    const std::string prefix =
        slash == std::string::npos ? dir : dir.substr(0, slash);
    if (!prefix.empty() && ::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::Error("persist: cannot create directory " + prefix);
    }
    if (slash == std::string::npos) break;
  }
  struct stat st;
  if (::stat(dir.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
    return Status::Error("persist: " + dir + " is not a directory");
  }
  return Status::Ok();
}

uint64_t NewStoreUuid() {
  static std::atomic<uint64_t> counter{0};
  const auto now = static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  const auto pid = static_cast<uint64_t>(::getpid());
  return SplitMix64(counter.fetch_add(1, std::memory_order_relaxed) ^
                    SplitMix64(now) ^ (pid << 32));
}

void AppendStoreSections(const StoreVersion& version, uint64_t store_uuid,
                         BlobWriter* writer) {
  std::string meta;
  AppendU32(&meta, kStoreSectionFormat);
  AppendU64(&meta, store_uuid);
  AppendU64(&meta, version.version);
  AppendU64(&meta, version.next_doc_id);
  AppendU64(&meta, version.reachable_nodes);
  AppendU64(&meta, version.docs.size());
  writer->AddSection(kStoreMetaSection, std::move(meta));

  std::string docs;
  docs.reserve(version.docs.size() * 12);
  for (const StoreDoc& doc : version.docs) {
    AppendU64(&docs, doc.id);
    AppendU32(&docs, doc.root);
  }
  writer->AddSection(kStoreDocsSection, std::move(docs));
}

Expected<StoreSnapshotImage> ParseStoreSections(const MappedBlob& blob) {
  const MappedBlob::Section* meta = blob.Find(kStoreMetaSection);
  const MappedBlob::Section* docs = blob.Find(kStoreDocsSection);
  if (meta == nullptr || docs == nullptr) {
    return Unexpected("persist: blob has no store sections");
  }
  // The store sections are metadata-sized (O(docs), not O(nodes)), so
  // checksumming them here keeps Open's lazy-open bound intact.
  if (Status status = blob.VerifySection(*meta); !status.ok()) return status;
  if (Status status = blob.VerifySection(*docs); !status.ok()) return status;

  ByteReader reader(meta->bytes);
  const uint32_t format = reader.ReadU32();
  StoreSnapshotImage image;
  image.store_uuid = reader.ReadU64();
  image.version = reader.ReadU64();
  image.next_doc_id = reader.ReadU64();
  image.reachable_nodes = reader.ReadU64();
  const uint64_t doc_count = reader.ReadU64();
  if (!reader.ok() || format != kStoreSectionFormat) {
    return Unexpected("persist: unsupported store.meta section");
  }
  if (docs->bytes.size() != doc_count * 12) {
    return Unexpected("persist: store.docs size does not match document count");
  }
  ByteReader table(docs->bytes);
  image.docs.reserve(doc_count);
  StoreDocId previous = 0;
  for (uint64_t i = 0; i < doc_count; ++i) {
    StoreDoc doc;
    doc.id = table.ReadU64();
    doc.root = table.ReadU32();
    if (doc.id <= previous || doc.id >= image.next_doc_id) {
      return Unexpected("persist: store.docs ids not ascending / out of range");
    }
    previous = doc.id;
    image.docs.push_back(doc);
  }
  return image;
}

std::string EncodeWalHeader(uint64_t store_uuid, uint64_t base_version) {
  std::string payload;
  AppendU32(&payload, kWalHeaderFormat);
  AppendU64(&payload, store_uuid);
  AppendU64(&payload, base_version);
  return payload;
}

Expected<WalHeader> DecodeWalHeader(std::string_view payload) {
  ByteReader reader(payload);
  const uint32_t format = reader.ReadU32();
  WalHeader header;
  header.store_uuid = reader.ReadU64();
  header.base_version = reader.ReadU64();
  if (!reader.ok() || format != kWalHeaderFormat) {
    return Unexpected("persist: unsupported commit-log header");
  }
  return header;
}

std::string EncodeCommitRecord(uint64_t version, const WriteBatch& batch) {
  std::string payload;
  AppendU32(&payload, kWalRecordFormat);
  AppendU64(&payload, version);
  AppendU32(&payload, static_cast<uint32_t>(batch.size()));
  for (const StoreOp& op : batch.ops()) {
    uint8_t kind = kWalOpInsertText;
    switch (op.kind) {
      case StoreOp::Kind::kInsertText: kind = kWalOpInsertText; break;
      case StoreOp::Kind::kCreateCde: kind = kWalOpCreateCde; break;
      case StoreOp::Kind::kEditCde: kind = kWalOpEditCde; break;
      case StoreOp::Kind::kDrop: kind = kWalOpDrop; break;
    }
    AppendU8(&payload, kind);
    AppendU64(&payload, op.doc);
    AppendU32(&payload, static_cast<uint32_t>(op.payload.size()));
    payload.append(op.payload);
  }
  return payload;
}

Expected<WalCommit> DecodeCommitRecord(std::string_view payload) {
  ByteReader reader(payload);
  const uint32_t format = reader.ReadU32();
  WalCommit commit;
  commit.version = reader.ReadU64();
  const uint32_t op_count = reader.ReadU32();
  if (!reader.ok() || format != kWalRecordFormat) {
    return Unexpected("persist: unsupported commit-log record");
  }
  for (uint32_t i = 0; i < op_count; ++i) {
    const uint8_t kind = reader.ReadU8();
    const uint64_t doc = reader.ReadU64();
    const uint32_t length = reader.ReadU32();
    const std::string_view bytes = reader.ReadBytes(length);
    if (!reader.ok()) return Unexpected("persist: truncated commit-log record");
    switch (kind) {
      case kWalOpInsertText:
        commit.batch.Insert(std::string(bytes));
        break;
      case kWalOpCreateCde:
        commit.batch.Create(std::string(bytes));
        break;
      case kWalOpEditCde:
        commit.batch.Edit(doc, std::string(bytes));
        break;
      case kWalOpDrop:
        commit.batch.Drop(doc);
        break;
      default:
        return Unexpected("persist: unknown op kind in commit-log record");
    }
  }
  if (reader.remaining() != 0) {
    return Unexpected("persist: trailing bytes in commit-log record");
  }
  return commit;
}

}  // namespace spanners
