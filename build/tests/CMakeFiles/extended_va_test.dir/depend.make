# Empty dependencies file for extended_va_test.
# This may be replaced when dependencies are built.
