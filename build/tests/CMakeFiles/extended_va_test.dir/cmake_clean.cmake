file(REMOVE_RECURSE
  "CMakeFiles/extended_va_test.dir/extended_va_test.cpp.o"
  "CMakeFiles/extended_va_test.dir/extended_va_test.cpp.o.d"
  "extended_va_test"
  "extended_va_test.pdb"
  "extended_va_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extended_va_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
