file(REMOVE_RECURSE
  "CMakeFiles/slp_eval_test.dir/slp_eval_test.cpp.o"
  "CMakeFiles/slp_eval_test.dir/slp_eval_test.cpp.o.d"
  "slp_eval_test"
  "slp_eval_test.pdb"
  "slp_eval_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slp_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
