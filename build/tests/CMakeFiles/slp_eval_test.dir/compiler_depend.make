# Empty compiler generated dependencies file for slp_eval_test.
# This may be replaced when dependencies are built.
