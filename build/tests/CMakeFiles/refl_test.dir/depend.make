# Empty dependencies file for refl_test.
# This may be replaced when dependencies are built.
