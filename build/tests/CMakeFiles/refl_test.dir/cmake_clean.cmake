file(REMOVE_RECURSE
  "CMakeFiles/refl_test.dir/refl_test.cpp.o"
  "CMakeFiles/refl_test.dir/refl_test.cpp.o.d"
  "refl_test"
  "refl_test.pdb"
  "refl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/refl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
