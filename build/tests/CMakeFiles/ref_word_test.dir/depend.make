# Empty dependencies file for ref_word_test.
# This may be replaced when dependencies are built.
