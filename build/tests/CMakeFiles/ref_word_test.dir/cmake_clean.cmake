file(REMOVE_RECURSE
  "CMakeFiles/ref_word_test.dir/ref_word_test.cpp.o"
  "CMakeFiles/ref_word_test.dir/ref_word_test.cpp.o.d"
  "ref_word_test"
  "ref_word_test.pdb"
  "ref_word_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ref_word_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
