file(REMOVE_RECURSE
  "CMakeFiles/slp_test.dir/slp_test.cpp.o"
  "CMakeFiles/slp_test.dir/slp_test.cpp.o.d"
  "slp_test"
  "slp_test.pdb"
  "slp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
