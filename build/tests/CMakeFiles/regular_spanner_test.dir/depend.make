# Empty dependencies file for regular_spanner_test.
# This may be replaced when dependencies are built.
