file(REMOVE_RECURSE
  "CMakeFiles/regular_spanner_test.dir/regular_spanner_test.cpp.o"
  "CMakeFiles/regular_spanner_test.dir/regular_spanner_test.cpp.o.d"
  "regular_spanner_test"
  "regular_spanner_test.pdb"
  "regular_spanner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regular_spanner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
