# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/algebra_test[1]_include.cmake")
include("/root/repo/build/tests/automata_test[1]_include.cmake")
include("/root/repo/build/tests/datalog_test[1]_include.cmake")
include("/root/repo/build/tests/decision_test[1]_include.cmake")
include("/root/repo/build/tests/extended_va_test[1]_include.cmake")
include("/root/repo/build/tests/grammar_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/ref_word_test[1]_include.cmake")
include("/root/repo/build/tests/refl_test[1]_include.cmake")
include("/root/repo/build/tests/regular_spanner_test[1]_include.cmake")
include("/root/repo/build/tests/slp_eval_test[1]_include.cmake")
include("/root/repo/build/tests/slp_test[1]_include.cmake")
include("/root/repo/build/tests/span_test[1]_include.cmake")
include("/root/repo/build/tests/umbrella_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/weighted_test[1]_include.cmake")
