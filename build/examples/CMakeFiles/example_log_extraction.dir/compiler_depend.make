# Empty compiler generated dependencies file for example_log_extraction.
# This may be replaced when dependencies are built.
