file(REMOVE_RECURSE
  "CMakeFiles/example_log_extraction.dir/log_extraction.cpp.o"
  "CMakeFiles/example_log_extraction.dir/log_extraction.cpp.o.d"
  "example_log_extraction"
  "example_log_extraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_log_extraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
