file(REMOVE_RECURSE
  "CMakeFiles/example_recursive_rules.dir/recursive_rules.cpp.o"
  "CMakeFiles/example_recursive_rules.dir/recursive_rules.cpp.o.d"
  "example_recursive_rules"
  "example_recursive_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_recursive_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
