# Empty compiler generated dependencies file for example_recursive_rules.
# This may be replaced when dependencies are built.
