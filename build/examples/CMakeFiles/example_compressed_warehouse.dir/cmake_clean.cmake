file(REMOVE_RECURSE
  "CMakeFiles/example_compressed_warehouse.dir/compressed_warehouse.cpp.o"
  "CMakeFiles/example_compressed_warehouse.dir/compressed_warehouse.cpp.o.d"
  "example_compressed_warehouse"
  "example_compressed_warehouse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_compressed_warehouse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
