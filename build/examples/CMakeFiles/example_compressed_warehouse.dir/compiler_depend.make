# Empty compiler generated dependencies file for example_compressed_warehouse.
# This may be replaced when dependencies are built.
