# Empty dependencies file for example_plagiarism_refl.
# This may be replaced when dependencies are built.
