file(REMOVE_RECURSE
  "CMakeFiles/example_plagiarism_refl.dir/plagiarism_refl.cpp.o"
  "CMakeFiles/example_plagiarism_refl.dir/plagiarism_refl.cpp.o.d"
  "example_plagiarism_refl"
  "example_plagiarism_refl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_plagiarism_refl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
