file(REMOVE_RECURSE
  "CMakeFiles/bench_intersection.dir/bench_intersection.cpp.o"
  "CMakeFiles/bench_intersection.dir/bench_intersection.cpp.o.d"
  "bench_intersection"
  "bench_intersection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_intersection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
