file(REMOVE_RECURSE
  "CMakeFiles/bench_balancing.dir/bench_balancing.cpp.o"
  "CMakeFiles/bench_balancing.dir/bench_balancing.cpp.o.d"
  "bench_balancing"
  "bench_balancing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_balancing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
