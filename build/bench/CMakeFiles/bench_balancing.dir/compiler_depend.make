# Empty compiler generated dependencies file for bench_balancing.
# This may be replaced when dependencies are built.
