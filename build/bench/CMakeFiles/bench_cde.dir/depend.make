# Empty dependencies file for bench_cde.
# This may be replaced when dependencies are built.
