file(REMOVE_RECURSE
  "CMakeFiles/bench_cde.dir/bench_cde.cpp.o"
  "CMakeFiles/bench_cde.dir/bench_cde.cpp.o.d"
  "bench_cde"
  "bench_cde.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cde.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
