file(REMOVE_RECURSE
  "CMakeFiles/bench_refl_modelcheck.dir/bench_refl_modelcheck.cpp.o"
  "CMakeFiles/bench_refl_modelcheck.dir/bench_refl_modelcheck.cpp.o.d"
  "bench_refl_modelcheck"
  "bench_refl_modelcheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_refl_modelcheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
