# Empty dependencies file for bench_refl_modelcheck.
# This may be replaced when dependencies are built.
