file(REMOVE_RECURSE
  "CMakeFiles/bench_core_hardness.dir/bench_core_hardness.cpp.o"
  "CMakeFiles/bench_core_hardness.dir/bench_core_hardness.cpp.o.d"
  "bench_core_hardness"
  "bench_core_hardness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_core_hardness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
