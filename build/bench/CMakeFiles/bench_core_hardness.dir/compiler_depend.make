# Empty compiler generated dependencies file for bench_core_hardness.
# This may be replaced when dependencies are built.
