# Empty dependencies file for bench_refl_sat.
# This may be replaced when dependencies are built.
