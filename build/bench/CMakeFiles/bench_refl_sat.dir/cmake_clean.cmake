file(REMOVE_RECURSE
  "CMakeFiles/bench_refl_sat.dir/bench_refl_sat.cpp.o"
  "CMakeFiles/bench_refl_sat.dir/bench_refl_sat.cpp.o.d"
  "bench_refl_sat"
  "bench_refl_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_refl_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
