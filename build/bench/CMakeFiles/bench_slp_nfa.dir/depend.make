# Empty dependencies file for bench_slp_nfa.
# This may be replaced when dependencies are built.
