file(REMOVE_RECURSE
  "CMakeFiles/bench_slp_nfa.dir/bench_slp_nfa.cpp.o"
  "CMakeFiles/bench_slp_nfa.dir/bench_slp_nfa.cpp.o.d"
  "bench_slp_nfa"
  "bench_slp_nfa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_slp_nfa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
