file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_slp.dir/bench_fig1_slp.cpp.o"
  "CMakeFiles/bench_fig1_slp.dir/bench_fig1_slp.cpp.o.d"
  "bench_fig1_slp"
  "bench_fig1_slp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_slp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
