file(REMOVE_RECURSE
  "CMakeFiles/bench_slp_enum.dir/bench_slp_enum.cpp.o"
  "CMakeFiles/bench_slp_enum.dir/bench_slp_enum.cpp.o.d"
  "bench_slp_enum"
  "bench_slp_enum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_slp_enum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
