# Empty dependencies file for bench_slp_enum.
# This may be replaced when dependencies are built.
