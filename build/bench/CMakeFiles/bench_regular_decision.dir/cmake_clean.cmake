file(REMOVE_RECURSE
  "CMakeFiles/bench_regular_decision.dir/bench_regular_decision.cpp.o"
  "CMakeFiles/bench_regular_decision.dir/bench_regular_decision.cpp.o.d"
  "bench_regular_decision"
  "bench_regular_decision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_regular_decision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
