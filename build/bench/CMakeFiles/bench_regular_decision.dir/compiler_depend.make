# Empty compiler generated dependencies file for bench_regular_decision.
# This may be replaced when dependencies are built.
