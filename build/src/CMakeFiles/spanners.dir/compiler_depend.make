# Empty compiler generated dependencies file for spanners.
# This may be replaced when dependencies are built.
