file(REMOVE_RECURSE
  "libspanners.a"
)
