
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/automata/dfa.cpp" "src/CMakeFiles/spanners.dir/automata/dfa.cpp.o" "gcc" "src/CMakeFiles/spanners.dir/automata/dfa.cpp.o.d"
  "/root/repo/src/automata/hopcroft.cpp" "src/CMakeFiles/spanners.dir/automata/hopcroft.cpp.o" "gcc" "src/CMakeFiles/spanners.dir/automata/hopcroft.cpp.o.d"
  "/root/repo/src/automata/nfa.cpp" "src/CMakeFiles/spanners.dir/automata/nfa.cpp.o" "gcc" "src/CMakeFiles/spanners.dir/automata/nfa.cpp.o.d"
  "/root/repo/src/automata/nfa_ops.cpp" "src/CMakeFiles/spanners.dir/automata/nfa_ops.cpp.o" "gcc" "src/CMakeFiles/spanners.dir/automata/nfa_ops.cpp.o.d"
  "/root/repo/src/automata/product.cpp" "src/CMakeFiles/spanners.dir/automata/product.cpp.o" "gcc" "src/CMakeFiles/spanners.dir/automata/product.cpp.o.d"
  "/root/repo/src/automata/symbol.cpp" "src/CMakeFiles/spanners.dir/automata/symbol.cpp.o" "gcc" "src/CMakeFiles/spanners.dir/automata/symbol.cpp.o.d"
  "/root/repo/src/automata/thompson.cpp" "src/CMakeFiles/spanners.dir/automata/thompson.cpp.o" "gcc" "src/CMakeFiles/spanners.dir/automata/thompson.cpp.o.d"
  "/root/repo/src/core/algebra.cpp" "src/CMakeFiles/spanners.dir/core/algebra.cpp.o" "gcc" "src/CMakeFiles/spanners.dir/core/algebra.cpp.o.d"
  "/root/repo/src/core/compile_algebra.cpp" "src/CMakeFiles/spanners.dir/core/compile_algebra.cpp.o" "gcc" "src/CMakeFiles/spanners.dir/core/compile_algebra.cpp.o.d"
  "/root/repo/src/core/core_simplification.cpp" "src/CMakeFiles/spanners.dir/core/core_simplification.cpp.o" "gcc" "src/CMakeFiles/spanners.dir/core/core_simplification.cpp.o.d"
  "/root/repo/src/core/decision.cpp" "src/CMakeFiles/spanners.dir/core/decision.cpp.o" "gcc" "src/CMakeFiles/spanners.dir/core/decision.cpp.o.d"
  "/root/repo/src/core/enumeration.cpp" "src/CMakeFiles/spanners.dir/core/enumeration.cpp.o" "gcc" "src/CMakeFiles/spanners.dir/core/enumeration.cpp.o.d"
  "/root/repo/src/core/extended_va.cpp" "src/CMakeFiles/spanners.dir/core/extended_va.cpp.o" "gcc" "src/CMakeFiles/spanners.dir/core/extended_va.cpp.o.d"
  "/root/repo/src/core/pattern_matching.cpp" "src/CMakeFiles/spanners.dir/core/pattern_matching.cpp.o" "gcc" "src/CMakeFiles/spanners.dir/core/pattern_matching.cpp.o.d"
  "/root/repo/src/core/ref_word.cpp" "src/CMakeFiles/spanners.dir/core/ref_word.cpp.o" "gcc" "src/CMakeFiles/spanners.dir/core/ref_word.cpp.o.d"
  "/root/repo/src/core/regex_ast.cpp" "src/CMakeFiles/spanners.dir/core/regex_ast.cpp.o" "gcc" "src/CMakeFiles/spanners.dir/core/regex_ast.cpp.o.d"
  "/root/repo/src/core/regex_parser.cpp" "src/CMakeFiles/spanners.dir/core/regex_parser.cpp.o" "gcc" "src/CMakeFiles/spanners.dir/core/regex_parser.cpp.o.d"
  "/root/repo/src/core/regular_spanner.cpp" "src/CMakeFiles/spanners.dir/core/regular_spanner.cpp.o" "gcc" "src/CMakeFiles/spanners.dir/core/regular_spanner.cpp.o.d"
  "/root/repo/src/core/span.cpp" "src/CMakeFiles/spanners.dir/core/span.cpp.o" "gcc" "src/CMakeFiles/spanners.dir/core/span.cpp.o.d"
  "/root/repo/src/core/variables.cpp" "src/CMakeFiles/spanners.dir/core/variables.cpp.o" "gcc" "src/CMakeFiles/spanners.dir/core/variables.cpp.o.d"
  "/root/repo/src/core/vset_automaton.cpp" "src/CMakeFiles/spanners.dir/core/vset_automaton.cpp.o" "gcc" "src/CMakeFiles/spanners.dir/core/vset_automaton.cpp.o.d"
  "/root/repo/src/core/word_equations.cpp" "src/CMakeFiles/spanners.dir/core/word_equations.cpp.o" "gcc" "src/CMakeFiles/spanners.dir/core/word_equations.cpp.o.d"
  "/root/repo/src/datalog/program.cpp" "src/CMakeFiles/spanners.dir/datalog/program.cpp.o" "gcc" "src/CMakeFiles/spanners.dir/datalog/program.cpp.o.d"
  "/root/repo/src/grammar/cfg.cpp" "src/CMakeFiles/spanners.dir/grammar/cfg.cpp.o" "gcc" "src/CMakeFiles/spanners.dir/grammar/cfg.cpp.o.d"
  "/root/repo/src/grammar/cyk_spanner.cpp" "src/CMakeFiles/spanners.dir/grammar/cyk_spanner.cpp.o" "gcc" "src/CMakeFiles/spanners.dir/grammar/cyk_spanner.cpp.o.d"
  "/root/repo/src/refl/core_to_refl.cpp" "src/CMakeFiles/spanners.dir/refl/core_to_refl.cpp.o" "gcc" "src/CMakeFiles/spanners.dir/refl/core_to_refl.cpp.o.d"
  "/root/repo/src/refl/ref_deref.cpp" "src/CMakeFiles/spanners.dir/refl/ref_deref.cpp.o" "gcc" "src/CMakeFiles/spanners.dir/refl/ref_deref.cpp.o.d"
  "/root/repo/src/refl/refl_decision.cpp" "src/CMakeFiles/spanners.dir/refl/refl_decision.cpp.o" "gcc" "src/CMakeFiles/spanners.dir/refl/refl_decision.cpp.o.d"
  "/root/repo/src/refl/refl_eval.cpp" "src/CMakeFiles/spanners.dir/refl/refl_eval.cpp.o" "gcc" "src/CMakeFiles/spanners.dir/refl/refl_eval.cpp.o.d"
  "/root/repo/src/refl/refl_spanner.cpp" "src/CMakeFiles/spanners.dir/refl/refl_spanner.cpp.o" "gcc" "src/CMakeFiles/spanners.dir/refl/refl_spanner.cpp.o.d"
  "/root/repo/src/refl/refl_to_core.cpp" "src/CMakeFiles/spanners.dir/refl/refl_to_core.cpp.o" "gcc" "src/CMakeFiles/spanners.dir/refl/refl_to_core.cpp.o.d"
  "/root/repo/src/slp/avl_grammar.cpp" "src/CMakeFiles/spanners.dir/slp/avl_grammar.cpp.o" "gcc" "src/CMakeFiles/spanners.dir/slp/avl_grammar.cpp.o.d"
  "/root/repo/src/slp/balance.cpp" "src/CMakeFiles/spanners.dir/slp/balance.cpp.o" "gcc" "src/CMakeFiles/spanners.dir/slp/balance.cpp.o.d"
  "/root/repo/src/slp/cde.cpp" "src/CMakeFiles/spanners.dir/slp/cde.cpp.o" "gcc" "src/CMakeFiles/spanners.dir/slp/cde.cpp.o.d"
  "/root/repo/src/slp/slp.cpp" "src/CMakeFiles/spanners.dir/slp/slp.cpp.o" "gcc" "src/CMakeFiles/spanners.dir/slp/slp.cpp.o.d"
  "/root/repo/src/slp/slp_builder.cpp" "src/CMakeFiles/spanners.dir/slp/slp_builder.cpp.o" "gcc" "src/CMakeFiles/spanners.dir/slp/slp_builder.cpp.o.d"
  "/root/repo/src/slp/slp_enum.cpp" "src/CMakeFiles/spanners.dir/slp/slp_enum.cpp.o" "gcc" "src/CMakeFiles/spanners.dir/slp/slp_enum.cpp.o.d"
  "/root/repo/src/slp/slp_nfa.cpp" "src/CMakeFiles/spanners.dir/slp/slp_nfa.cpp.o" "gcc" "src/CMakeFiles/spanners.dir/slp/slp_nfa.cpp.o.d"
  "/root/repo/src/util/bool_matrix.cpp" "src/CMakeFiles/spanners.dir/util/bool_matrix.cpp.o" "gcc" "src/CMakeFiles/spanners.dir/util/bool_matrix.cpp.o.d"
  "/root/repo/src/util/random.cpp" "src/CMakeFiles/spanners.dir/util/random.cpp.o" "gcc" "src/CMakeFiles/spanners.dir/util/random.cpp.o.d"
  "/root/repo/src/util/string_hash.cpp" "src/CMakeFiles/spanners.dir/util/string_hash.cpp.o" "gcc" "src/CMakeFiles/spanners.dir/util/string_hash.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
