// Experiment E4 (DESIGN.md): Section 2.4 -- core spanners express regular
// intersection non-emptiness (the PSpace-hardness witness):
//     ς=_{x1..xk}( x1>r1<x1 ... xk>rk<xk )  is satisfiable
//     iff  r1 ∩ ... ∩ rk is non-empty.
//
// Expected shape: deciding via the core spanner (bounded document search)
// blows up exponentially in the search bound, while the direct automaton
// product grows only with the product-state count; both agree on the answer.
#include <benchmark/benchmark.h>

#include <string>

#include "automata/product.hpp"
#include "automata/thompson.hpp"
#include "core/decision.hpp"
#include "core/regex_parser.hpp"

namespace spanners {
namespace {

/// r_i = words over {a,b} whose i-th letter from the end is 'a' -- the
/// classical family whose intersection forces long witnesses.
std::string NthFromEnd(int i) {
  std::string r = "(a|b)*a";
  for (int j = 1; j < i; ++j) r += "(a|b)";
  return r;
}

void BM_Intersection_ViaAutomataProduct(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Nfa product = ThompsonConstruct(MustParse(NthFromEnd(1)));
    for (int i = 2; i <= k; ++i) {
      product = Intersect(product, ThompsonConstruct(MustParse(NthFromEnd(i))));
    }
    benchmark::DoNotOptimize(product.IsEmptyLanguage());
    state.counters["product_states"] = static_cast<double>(product.num_states());
  }
  state.counters["k"] = static_cast<double>(k);
}
BENCHMARK(BM_Intersection_ViaAutomataProduct)->DenseRange(2, 5);

void BM_Intersection_ViaCoreSpanner(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  std::string pattern;
  std::vector<std::string> names;
  for (int i = 1; i <= k; ++i) {
    const std::string name = "x" + std::to_string(i);
    names.push_back(name);
    pattern += "{" + name + ": " + NthFromEnd(i) + "}";
  }
  const CoreNormalForm core =
      SimplifyCore(SpannerExpr::SelectEq(SpannerExpr::Parse(pattern), names));
  bool satisfiable = false;
  for (auto _ : state) {
    satisfiable = CoreSatisfiableBounded(core, "ab", static_cast<std::size_t>(k) * k);
    benchmark::DoNotOptimize(satisfiable);
  }
  state.counters["k"] = static_cast<double>(k);
  state.counters["satisfiable"] = satisfiable ? 1 : 0;
}
BENCHMARK(BM_Intersection_ViaCoreSpanner)->DenseRange(2, 3);

void BM_IntersectionUnsat_ViaCoreSpanner(benchmark::State& state) {
  // Unsatisfiable family: the all-'a' witness of the family above is found
  // immediately by the lexicographic search, so to expose the inherent
  // blow-up we add the contradictory constraint "ends in b". The bounded
  // search must now exhaust every document up to the bound.
  const int k = static_cast<int>(state.range(0));
  std::string pattern = "{x0: (a|b)*b}";
  std::vector<std::string> names = {"x0"};
  for (int i = 1; i <= k; ++i) {
    const std::string name = "x" + std::to_string(i);
    names.push_back(name);
    pattern += "{" + name + ": " + NthFromEnd(i) + "}";
  }
  const CoreNormalForm core =
      SimplifyCore(SpannerExpr::SelectEq(SpannerExpr::Parse(pattern), names));
  const std::size_t bound = static_cast<std::size_t>(state.range(1));
  bool satisfiable = true;
  for (auto _ : state) {
    satisfiable = CoreSatisfiableBounded(core, "ab", bound);
    benchmark::DoNotOptimize(satisfiable);
  }
  state.counters["k"] = static_cast<double>(k);
  state.counters["search_bound"] = static_cast<double>(bound);
  state.counters["satisfiable"] = satisfiable ? 1 : 0;
}
BENCHMARK(BM_IntersectionUnsat_ViaCoreSpanner)
    ->Args({2, 6})
    ->Args({2, 8})
    ->Args({2, 10})
    ->Args({2, 12});

void BM_IntersectionUnsat_ViaAutomataProduct(benchmark::State& state) {
  // The same unsatisfiable instance decided exactly by the product: fast.
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Nfa product = ThompsonConstruct(MustParse("(a|b)*b"));
    for (int i = 1; i <= k; ++i) {
      product = Intersect(product, ThompsonConstruct(MustParse(NthFromEnd(i))));
    }
    benchmark::DoNotOptimize(product.IsEmptyLanguage());
  }
  state.counters["k"] = static_cast<double>(k);
}
BENCHMARK(BM_IntersectionUnsat_ViaAutomataProduct)->Arg(2);

}  // namespace
}  // namespace spanners
