// Experiment F1 (DESIGN.md): Figure 1 of the paper, reproduced and measured.
// The example SLP is rebuilt exactly (documents, orders, balance values are
// asserted), then used to benchmark the basic SLP primitives: derivation,
// random access, substring extraction, and extension by new nodes (the
// figure's grey part).
#include <benchmark/benchmark.h>

#include "slp/balance.hpp"
#include "slp/slp.hpp"
#include "util/common.hpp"

namespace spanners {
namespace {

struct Figure1 {
  Slp slp;
  NodeId e, f, c, b, d, a1, a2, a3;

  Figure1() {
    const NodeId ta = slp.Terminal('a');
    const NodeId tb = slp.Terminal('b');
    const NodeId tc = slp.Terminal('c');
    e = slp.Pair(ta, tb);
    f = slp.Pair(tb, tc);
    c = slp.Pair(f, ta);
    b = slp.Pair(e, c);
    d = slp.Pair(c, b);
    a3 = slp.Pair(e, b);
    a1 = slp.Pair(a3, c);
    a2 = slp.Pair(c, d);
    // Verify against the paper's stated facts; abort loudly on mismatch.
    Require(slp.Derive(a1) == "ababbcabca", "Fig1: D(A1) mismatch");
    Require(slp.Derive(a2) == "bcabcaabbca", "Fig1: D(A2) mismatch");
    Require(slp.Derive(a3) == "ababbca", "Fig1: D(A3) mismatch");
    Require(slp.Order(a1) == 6 && slp.Order(a2) == 6 && slp.Order(a3) == 5,
            "Fig1: orders mismatch");
    Require(slp.Balance(a1) == 2 && slp.Balance(a2) == -2 && slp.Balance(a3) == -2,
            "Fig1: balance mismatch");
  }
};

void BM_Fig1_Derive(benchmark::State& state) {
  Figure1 fig;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fig.slp.Derive(fig.a1));
    benchmark::DoNotOptimize(fig.slp.Derive(fig.a2));
    benchmark::DoNotOptimize(fig.slp.Derive(fig.a3));
  }
  state.counters["slp_nodes"] = static_cast<double>(fig.slp.num_nodes());
  state.counters["doc_bytes_total"] = 10 + 11 + 7;
}
BENCHMARK(BM_Fig1_Derive);

void BM_Fig1_RandomAccess(benchmark::State& state) {
  Figure1 fig;
  uint64_t position = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fig.slp.CharAt(fig.a2, position));
    position = (position + 7) % fig.slp.Length(fig.a2);
  }
}
BENCHMARK(BM_Fig1_RandomAccess);

void BM_Fig1_GreyExtension(benchmark::State& state) {
  // Adding the grey nodes A4, G, A5 of Figure 1: document database growth
  // by pure node insertion (Section 4.3's easy case).
  for (auto _ : state) {
    state.PauseTiming();
    Figure1 fig;
    state.ResumeTiming();
    const NodeId a4 = fig.slp.Pair(fig.a2, fig.a1);
    const NodeId g = fig.slp.Pair(fig.d, fig.b);
    const NodeId a5 = fig.slp.Pair(fig.b, g);
    benchmark::DoNotOptimize(a4);
    benchmark::DoNotOptimize(a5);
  }
  Figure1 fig;
  const NodeId g = fig.slp.Pair(fig.d, fig.b);
  const NodeId a5 = fig.slp.Pair(fig.b, g);
  Require(fig.slp.Derive(a5) == "abbcabcaabbcaabbca", "Fig1: D(A5) mismatch");
  state.counters["d5_len"] = static_cast<double>(fig.slp.Length(a5));
}
BENCHMARK(BM_Fig1_GreyExtension);

}  // namespace
}  // namespace spanners
