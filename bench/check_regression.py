#!/usr/bin/env python3
"""Bench-regression gate: compare a merged BENCH json against a baseline.

Reads the merged report produced by bench/run_benches.sh (the
{"experiments": {suite: [google-benchmark entries]}} format) and compares
every benchmark named in bench/baseline.json against it. A benchmark whose
time (cpu_time when present, else real_time; min across repetitions)
exceeds baseline * (1 + threshold/100) is a regression; a
benchmark present in the baseline but missing from the current run is also
a failure (a renamed or crashed benchmark must not silently pass the gate).
A benchmark present in the current run but absent from the baseline is
warned about (and listed as "new_benchmarks" in the --report JSON) so it
gets a baseline entry instead of floating ungated forever; it does not
fail the gate.

Usage:
  # Gate (exit 1 on regression or missing benchmark):
  bench/check_regression.py --current BENCH_PR10.json \
      [--baseline bench/baseline.json] [--threshold-pct 25] [--report out.json]

  # Rebase the baseline from a trusted run on the reference box:
  bench/check_regression.py --rebase BENCH_PR10.json [--baseline bench/baseline.json]

The baseline stores one number per benchmark (ns, cpu_time preferred) plus the
environment it was measured in; see DESIGN.md §1.12 for the rebase workflow.
"""

import argparse
import json
import os
import sys

TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_current(path):
    """Returns {suite/benchmark_name: real_time_ns} from a merged BENCH json."""
    with open(path) as f:
        merged = json.load(f)
    experiments = merged.get("experiments")
    if not isinstance(experiments, dict) or not experiments:
        raise SystemExit(f"error: {path} has no 'experiments' section")
    times = {}
    for suite, entries in experiments.items():
        for entry in entries:
            # Skip aggregate rows (mean/median/stddev of repetitions): the
            # plain iteration rows are what both sides record.
            if entry.get("run_type") == "aggregate":
                continue
            unit = TIME_UNIT_NS.get(entry.get("time_unit", "ns"))
            if unit is None or "real_time" not in entry:
                continue
            # Gate on CPU time when available: on small shared boxes the
            # real-time clock absorbs scheduler preemption and disk-cache
            # state (an fsync-bound benchmark can read 2x high run-to-run
            # with identical code), while cpu_time tracks the work the code
            # actually did. With --benchmark_repetitions the same name
            # appears once per repetition; keep the minimum -- interference
            # only ever adds time, so the fastest repetition is the closest
            # measurement of the code itself.
            name = f"{suite}/{entry['name']}"
            value = entry.get("cpu_time", entry["real_time"]) * unit
            times[name] = min(times.get(name, value), value)
    if not times:
        raise SystemExit(f"error: {path} contains no benchmark timings")
    return times, merged.get("env", {})


def rebase(current_path, baseline_path):
    times, env = load_current(current_path)
    baseline = {
        "comment": "Per-benchmark real_time_ns reference for the regression "
                   "gate (bench/check_regression.py). Rebase only from a "
                   "quiet run on the reference box; see DESIGN.md §1.12.",
        "env": {k: env.get(k) for k in ("git_sha", "nproc", "effective_threads")},
        "benchmarks": {
            name: {"real_time_ns": round(t, 1)} for name, t in sorted(times.items())
        },
    }
    with open(baseline_path, "w") as f:
        json.dump(baseline, f, indent=1)
        f.write("\n")
    print(f"rebased {baseline_path}: {len(times)} benchmarks from {current_path}")


def check(current_path, baseline_path, threshold_pct, report_path):
    times, _ = load_current(current_path)
    with open(baseline_path) as f:
        baseline = json.load(f)
    reference = baseline.get("benchmarks", {})
    if not reference:
        raise SystemExit(f"error: {baseline_path} has no 'benchmarks' section")

    limit = 1.0 + threshold_pct / 100.0
    rows, regressions, missing = [], [], []
    for name in sorted(reference):
        base_ns = reference[name]["real_time_ns"]
        now_ns = times.get(name)
        if now_ns is None:
            missing.append(name)
            rows.append({"benchmark": name, "baseline_ns": base_ns,
                         "current_ns": None, "ratio": None, "status": "MISSING"})
            continue
        ratio = now_ns / base_ns if base_ns > 0 else float("inf")
        status = "REGRESSION" if ratio > limit else "ok"
        if status == "REGRESSION":
            regressions.append(name)
        rows.append({"benchmark": name, "baseline_ns": round(base_ns, 1),
                     "current_ns": round(now_ns, 1), "ratio": round(ratio, 3),
                     "status": status})

    # Benchmarks the current run has but the baseline does not: warn (and
    # report) so new benchmarks get gated instead of silently floating.
    new_benchmarks = sorted(set(times) - set(reference))

    width = max(len(r["benchmark"]) for r in rows)
    print(f"bench-regression gate: threshold +{threshold_pct:g}% "
          f"({len(rows)} benchmarks, baseline {baseline_path})")
    for r in rows:
        if r["current_ns"] is None:
            print(f"  {r['benchmark']:<{width}}  {r['baseline_ns']:>12.1f}ns  "
                  f"{'-':>12}  {'-':>7}  {r['status']}")
        else:
            print(f"  {r['benchmark']:<{width}}  {r['baseline_ns']:>12.1f}ns  "
                  f"{r['current_ns']:>10.1f}ns  {r['ratio']:>6.3f}x  {r['status']}")

    for name in new_benchmarks:
        print(f"  warning: {name} has no baseline entry (current "
              f"{times[name]:.1f}ns); add it via --rebase or a manual edit")

    if report_path:
        report = {"threshold_pct": threshold_pct, "baseline": baseline_path,
                  "current": current_path, "results": rows,
                  "regressions": regressions, "missing": missing,
                  "new_benchmarks": [
                      {"benchmark": name, "current_ns": round(times[name], 1)}
                      for name in new_benchmarks
                  ]}
        with open(report_path, "w") as f:
            json.dump(report, f, indent=1)
            f.write("\n")
        print(f"wrote {report_path}")

    if regressions or missing:
        for name in regressions:
            print(f"FAIL: {name} regressed past +{threshold_pct:g}%", file=sys.stderr)
        for name in missing:
            print(f"FAIL: {name} missing from current run", file=sys.stderr)
        return 1
    print("gate passed: no benchmark regressed past the threshold")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", help="merged BENCH json to gate")
    parser.add_argument("--rebase", help="merged BENCH json to adopt as baseline")
    parser.add_argument("--baseline",
                        default=os.path.join(os.path.dirname(__file__), "baseline.json"))
    parser.add_argument("--threshold-pct", type=float, default=25.0)
    parser.add_argument("--report", help="write a JSON comparison report here")
    args = parser.parse_args()

    if bool(args.current) == bool(args.rebase):
        parser.error("exactly one of --current / --rebase is required")
    if args.rebase:
        rebase(args.rebase, args.baseline)
        return 0
    return check(args.current, args.baseline, args.threshold_pct, args.report)


if __name__ == "__main__":
    sys.exit(main())
