// Closed-loop load generator for the spanner service (DESIGN.md §1.15).
//
// --connections client threads each own one SpannerClient and issue one
// request at a time (closed loop: the next request starts when the response
// lands). Each iteration is a read with probability --read-ratio -- one
// batched QUERY over every live document, counted as one RPC and
// N-documents queries -- otherwise a write: a COMMIT editing one seed
// document with a length-preserving-ish CDE insert (documents only grow, so
// the expression stays valid without knowing lengths client-side).
//
// Every thread also pins the snapshot it started from (SNAPSHOT RPC) and
// audits it every --audit-every iterations: per-document tuple counts
// against the pinned version vector must never change while commits land --
// the wire-level form of the snapshot-isolation guarantee. Violations make
// the run fail (exit 1).
//
//   ./build/bench/loadgen --port=PORT [--host=127.0.0.1] [--connections=4]
//       [--duration=10] [--read-ratio=0.9] [--pattern=RE] [--audit-every=64]
//       [--json-out=PATH] [--dump-metrics=PATH]
//
// --json-out writes one JSON object (queries/s, RPC p50/p99 split by
// read/write, shed retries) that bench/run_benches.sh merges into
// BENCH_PR<n>.json.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "example_util.hpp"
#include "net/client.hpp"
#include "util/random.hpp"

using namespace spanners;

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct ThreadResult {
  std::vector<uint64_t> read_ns;   ///< per-RPC latency
  std::vector<uint64_t> write_ns;
  uint64_t queries = 0;  ///< per-document evaluations served
  uint64_t errors = 0;
  uint64_t violations = 0;
  uint64_t retries = 0;  ///< kRetry responses absorbed by the client
};

/// The \p p-th percentile (0-100) of \p samples, in microseconds.
double PercentileUs(std::vector<uint64_t>& samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double rank = (p / 100.0) * static_cast<double>(samples.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  const double ns = static_cast<double>(samples[lo]) * (1.0 - frac) +
                    static_cast<double>(samples[hi]) * frac;
  return ns / 1000.0;
}

void RunClient(const std::string& host, uint16_t port, const std::string& pattern,
               double read_ratio, unsigned audit_every, uint64_t deadline_ns,
               uint64_t seed, ThreadResult* out) {
  Expected<SpannerClient> connected = SpannerClient::Connect(host, port);
  if (!connected.ok()) {
    std::cerr << "loadgen: connect: " << connected.error() << "\n";
    ++out->errors;
    return;
  }
  SpannerClient client = std::move(*connected);

  // Pin a snapshot and record its per-document tuple counts as the
  // isolation baseline.
  Expected<SnapshotResponse> pinned = client.Snapshot();
  if (!pinned.ok()) {
    std::cerr << "loadgen: snapshot: " << pinned.error() << "\n";
    ++out->errors;
    return;
  }
  QueryRequest baseline_request;
  baseline_request.pattern = pattern;
  baseline_request.snapshot_versions = pinned->versions;
  Expected<QueryResponse> baseline = client.Query(baseline_request);
  if (!baseline.ok()) {
    std::cerr << "loadgen: baseline query: " << baseline.error() << "\n";
    ++out->errors;
    return;
  }
  std::vector<ClusterDocId> docs;
  for (const WireDocResult& result : baseline->results) {
    if (result.ok) docs.push_back(result.doc);
  }
  if (docs.empty()) {
    std::cerr << "loadgen: server has no documents (seed it)\n";
    ++out->errors;
    return;
  }

  Rng rng(seed);
  QueryRequest read_request;
  read_request.pattern = pattern;  // fresh snapshot, all docs, counts only
  uint64_t iteration = 0;
  unsigned consecutive_errors = 0;
  while (NowNs() < deadline_ns) {
    // A dead server fails every RPC instantly; bail instead of spinning
    // out millions of error-counting iterations until the deadline.
    if (consecutive_errors >= 64) {
      std::cerr << "loadgen: 64 consecutive errors, giving up\n";
      break;
    }
    ++iteration;
    if (audit_every > 0 && iteration % audit_every == 0) {
      Expected<QueryResponse> audit = client.Query(baseline_request);
      if (!audit.ok()) {
        ++out->errors;
        ++consecutive_errors;
        continue;
      }
      consecutive_errors = 0;
      if (audit->results.size() != baseline->results.size()) {
        ++out->violations;
        continue;
      }
      for (std::size_t i = 0; i < audit->results.size(); ++i) {
        if (audit->results[i].doc != baseline->results[i].doc ||
            audit->results[i].num_tuples != baseline->results[i].num_tuples) {
          ++out->violations;
        }
      }
      continue;
    }
    const bool read =
        static_cast<double>(rng.NextBelow(1u << 20)) / double{1u << 20} <
        read_ratio;
    const uint64_t start = NowNs();
    if (read) {
      Expected<QueryResponse> response = client.Query(read_request);
      if (!response.ok()) {
        ++out->errors;
        ++consecutive_errors;
        continue;
      }
      consecutive_errors = 0;
      out->read_ns.push_back(NowNs() - start);
      out->queries += response->results.size();
    } else {
      const ClusterDocId doc = docs[rng.NextBelow(docs.size())];
      WriteBatch batch;
      // Documents only grow (seeded non-empty), so this stays valid
      // without knowing lengths client-side.
      batch.Edit(doc, "insert(D" + std::to_string(doc) + ", extract(D" +
                          std::to_string(doc) + ", 1, 1), 1)");
      Expected<CommitResponse> response = client.Commit(batch);
      if (!response.ok()) {
        ++out->errors;
        ++consecutive_errors;
        continue;
      }
      consecutive_errors = 0;
      out->write_ns.push_back(NowNs() - start);
    }
  }
  out->retries = client.retries();
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser parser;
  ExampleFlags common;
  std::string host = "127.0.0.1";
  std::string pattern = "(.|\\n)*{hit: the}(.|\\n)*";
  std::string json_out;
  unsigned port = 0, connections = 4, duration_s = 10, audit_every = 64;
  double read_ratio = 0.9;
  parser.AddString("host", &host, "server host (default 127.0.0.1)");
  parser.AddUnsigned("port", &port, "server port (required)");
  parser.AddUnsigned("connections", &connections, "client threads (default 4)");
  parser.AddUnsigned("duration", &duration_s, "seconds to drive (default 10)");
  parser.AddDouble("read-ratio", &read_ratio,
                   "fraction of iterations that read (default 0.9)");
  parser.AddString("pattern", &pattern, "spanner pattern for QUERY traffic");
  parser.AddUnsigned("audit-every", &audit_every,
                     "pinned-snapshot isolation audit cadence (0 = off)");
  parser.AddString("json-out", &json_out, "write a result JSON object here");
  std::string dump_metrics;
  parser.AddString("dump-metrics", &dump_metrics,
                   "after the run, fetch the METRICS RPC and write the "
                   "OpenMetrics text here");
  RegisterExampleFlags(&parser, &common);
  const ExampleFlags flags = ParseExampleFlagsWith(&parser, argc, argv, &common);
  (void)flags;
  if (port == 0 || port > 65535 || connections == 0 || read_ratio < 0.0 ||
      read_ratio > 1.0) {
    std::cerr << "loadgen: need --port in [1,65535], --connections >= 1, "
                 "--read-ratio in [0,1]\n";
    return 2;
  }

  const uint64_t deadline_ns =
      NowNs() + static_cast<uint64_t>(duration_s) * 1'000'000'000ull;
  const uint64_t start_ns = NowNs();
  std::vector<ThreadResult> results(connections);
  std::vector<std::thread> threads;
  threads.reserve(connections);
  for (unsigned c = 0; c < connections; ++c) {
    threads.emplace_back(RunClient, host, static_cast<uint16_t>(port), pattern,
                         read_ratio, audit_every, deadline_ns, 100 + c,
                         &results[c]);
  }
  for (std::thread& thread : threads) thread.join();
  const double elapsed_s =
      static_cast<double>(NowNs() - start_ns) / 1e9;

  std::vector<uint64_t> read_ns, write_ns;
  uint64_t queries = 0, errors = 0, violations = 0, retries = 0;
  for (ThreadResult& result : results) {
    read_ns.insert(read_ns.end(), result.read_ns.begin(), result.read_ns.end());
    write_ns.insert(write_ns.end(), result.write_ns.begin(),
                    result.write_ns.end());
    queries += result.queries;
    errors += result.errors;
    violations += result.violations;
    retries += result.retries;
  }
  const uint64_t read_rpcs = read_ns.size();
  const uint64_t write_rpcs = write_ns.size();
  const double queries_per_s =
      elapsed_s > 0 ? static_cast<double>(queries) / elapsed_s : 0;
  const double rpcs_per_s =
      elapsed_s > 0 ? static_cast<double>(read_rpcs + write_rpcs) / elapsed_s : 0;
  const double read_p50 = PercentileUs(read_ns, 50);
  const double read_p99 = PercentileUs(read_ns, 99);
  const double write_p50 = PercentileUs(write_ns, 50);
  const double write_p99 = PercentileUs(write_ns, 99);

  std::printf(
      "loadgen: %.1fs, %u connections, read ratio %.2f\n"
      "  reads:  %llu rpcs, %llu doc-queries (%.0f queries/s), p50 %.1fus p99 "
      "%.1fus\n"
      "  writes: %llu commits, p50 %.1fus p99 %.1fus\n"
      "  shed retries absorbed: %llu; errors: %llu; isolation violations: "
      "%llu\n",
      elapsed_s, connections, read_ratio,
      static_cast<unsigned long long>(read_rpcs),
      static_cast<unsigned long long>(queries), queries_per_s, read_p50,
      read_p99, static_cast<unsigned long long>(write_rpcs), write_p50,
      write_p99, static_cast<unsigned long long>(retries),
      static_cast<unsigned long long>(errors),
      static_cast<unsigned long long>(violations));

  if (!dump_metrics.empty()) {
    Expected<SpannerClient> client =
        SpannerClient::Connect(host, static_cast<uint16_t>(port));
    if (!client.ok()) {
      std::cerr << "loadgen: METRICS rpc: " << client.error() << "\n";
      return 1;
    }
    const Expected<std::string> text = client->Metrics();
    if (!text.ok()) {
      std::cerr << "loadgen: METRICS rpc: " << text.error() << "\n";
      return 1;
    }
    std::FILE* out = std::fopen(dump_metrics.c_str(), "w");
    if (out == nullptr) {
      std::cerr << "loadgen: cannot write " << dump_metrics << "\n";
      return 1;
    }
    std::fwrite(text->data(), 1, text->size(), out);
    std::fclose(out);
  }

  if (!json_out.empty()) {
    std::FILE* out = std::fopen(json_out.c_str(), "w");
    if (out == nullptr) {
      std::cerr << "loadgen: cannot write " << json_out << "\n";
      return 1;
    }
    std::fprintf(
        out,
        "{\n"
        "  \"connections\": %u,\n"
        "  \"read_ratio\": %.3f,\n"
        "  \"duration_s\": %.3f,\n"
        "  \"queries_per_s\": %.1f,\n"
        "  \"rpcs_per_s\": %.1f,\n"
        "  \"read_rpcs\": %llu,\n"
        "  \"write_rpcs\": %llu,\n"
        "  \"read_p50_us\": %.1f,\n"
        "  \"read_p99_us\": %.1f,\n"
        "  \"write_p50_us\": %.1f,\n"
        "  \"write_p99_us\": %.1f,\n"
        "  \"shed_retries\": %llu,\n"
        "  \"errors\": %llu,\n"
        "  \"isolation_violations\": %llu\n"
        "}\n",
        connections, read_ratio, elapsed_s, queries_per_s, rpcs_per_s,
        static_cast<unsigned long long>(read_rpcs),
        static_cast<unsigned long long>(write_rpcs), read_p50, read_p99,
        write_p50, write_p99, static_cast<unsigned long long>(retries),
        static_cast<unsigned long long>(errors),
        static_cast<unsigned long long>(violations));
    std::fclose(out);
  }
  return violations == 0 && errors == 0 ? 0 : 1;
}
