// Experiment E7 (DESIGN.md): Section 4.2 -- NFA acceptance over
// SLP-compressed strings in O(|S| * n^3) via Boolean matrix products.
//
// Expected shape: on highly compressible documents (|S| = O(log |D|)) the
// matrix method's time stays near-flat as |D| doubles, while
// decompress-and-run grows linearly; the crossover appears once |D| is
// large relative to the automaton.
//
// Preprocessing benchmarks take a second argument: the worker-thread count
// for the level-order matrix fill (1 = the sequential baseline; see
// slp_schedule.hpp). Speedup saturates at the machine's core count.
#include <benchmark/benchmark.h>

#include "automata/nfa_ops.hpp"
#include "core/regular_spanner.hpp"
#include "slp/slp_builder.hpp"
#include "slp/slp_nfa.hpp"
#include "util/random.hpp"
#include "util/thread_pool.hpp"

namespace spanners {
namespace {

Nfa PatternNfa() { return RegularSpanner::Compile("(a|b)*ab(a|b)*ba(a|b)*").vset().nfa(); }

/// 1-, 4-, and N-thread variants (N = SPANNERS_THREADS / hardware cores).
std::vector<int64_t> ThreadArgs() {
  std::vector<int64_t> args{1, 4};
  const int64_t n = static_cast<int64_t>(ThreadPool::DefaultThreadCount());
  if (n != 1 && n != 4) args.push_back(n);
  return args;
}

void BM_SlpNfa_CompressedMatrices(benchmark::State& state) {
  // (abba)^(2^e): SLP size grows linearly in e = log2 |D|.
  Slp slp;
  const NodeId abba = BuildBalanced(slp, "abba");
  const NodeId root = BuildPower(slp, abba, uint64_t{1} << state.range(0));
  const Nfa nfa = PatternNfa();
  for (auto _ : state) {
    SlpNfaMatcher matcher(nfa);  // fresh cache: measure full preprocessing
    matcher.SetThreads(static_cast<std::size_t>(state.range(1)));
    benchmark::DoNotOptimize(matcher.Accepts(slp, root));
  }
  state.counters["doc_bytes"] = static_cast<double>(slp.Length(root));
  state.counters["slp_nodes"] = static_cast<double>(slp.ReachableSize(root));
  state.counters["threads"] = static_cast<double>(state.range(1));
}
BENCHMARK(BM_SlpNfa_CompressedMatrices)
    ->ArgsProduct({benchmark::CreateDenseRange(4, 20, 4), ThreadArgs()});

void BM_SlpNfa_DecompressAndRun(benchmark::State& state) {
  Slp slp;
  const NodeId abba = BuildBalanced(slp, "abba");
  const NodeId root = BuildPower(slp, abba, uint64_t{1} << state.range(0));
  const Nfa nfa = PatternNfa();
  for (auto _ : state) {
    const std::string doc = slp.Derive(root);
    benchmark::DoNotOptimize(nfa.Accepts(ToSymbols(doc)));
  }
  state.counters["doc_bytes"] = static_cast<double>(slp.Length(root));
}
BENCHMARK(BM_SlpNfa_DecompressAndRun)->DenseRange(4, 16, 4);

void BM_SlpNfa_ModeratelyCompressible(benchmark::State& state) {
  // Re-Pair on boilerplate text: realistic compression rather than the
  // pathological best case. This is the workload where the wide Re-Pair
  // levels give the parallel fill something to chew on.
  Rng rng(5);
  const std::string doc = BoilerplateText(rng, static_cast<std::size_t>(state.range(0)), 0.05);
  Slp slp;
  const NodeId root = BuildRePair(slp, doc);
  const Nfa nfa = RegularSpanner::Compile(".*fox.*").vset().nfa();
  for (auto _ : state) {
    SlpNfaMatcher matcher(nfa);
    matcher.SetThreads(static_cast<std::size_t>(state.range(1)));
    benchmark::DoNotOptimize(matcher.Accepts(slp, root));
  }
  state.counters["doc_bytes"] = static_cast<double>(doc.size());
  state.counters["slp_nodes"] = static_cast<double>(slp.ReachableSize(root));
  state.counters["threads"] = static_cast<double>(state.range(1));
}
BENCHMARK(BM_SlpNfa_ModeratelyCompressible)
    ->ArgsProduct({benchmark::CreateRange(16, 1024, 4), ThreadArgs()});

void BM_SlpNfa_KernelComparison(benchmark::State& state) {
  // Blocked (transpose + AND-reduce) vs the original sparse-rows kernel on
  // the boilerplate workload; range(1) selects the kernel.
  Rng rng(5);
  const std::string doc = BoilerplateText(rng, 512, 0.05);
  Slp slp;
  const NodeId root = BuildRePair(slp, doc);
  const Nfa nfa = RegularSpanner::Compile(".*fox.*").vset().nfa();
  const auto kernel = state.range(0) == 0 ? BoolMatrix::MultiplyKernel::kBlocked
                                          : BoolMatrix::MultiplyKernel::kSparseRows;
  const auto previous = BoolMatrix::multiply_kernel();
  BoolMatrix::SetMultiplyKernel(kernel);
  for (auto _ : state) {
    SlpNfaMatcher matcher(nfa);
    matcher.SetThreads(1);
    benchmark::DoNotOptimize(matcher.Accepts(slp, root));
  }
  BoolMatrix::SetMultiplyKernel(previous);
  state.SetLabel(state.range(0) == 0 ? "blocked" : "sparse_rows");
}
BENCHMARK(BM_SlpNfa_KernelComparison)->Arg(0)->Arg(1);

}  // namespace
}  // namespace spanners
