// Experiment E7 (DESIGN.md): Section 4.2 -- NFA acceptance over
// SLP-compressed strings in O(|S| * n^3) via Boolean matrix products.
//
// Expected shape: on highly compressible documents (|S| = O(log |D|)) the
// matrix method's time stays near-flat as |D| doubles, while
// decompress-and-run grows linearly; the crossover appears once |D| is
// large relative to the automaton.
#include <benchmark/benchmark.h>

#include "automata/nfa_ops.hpp"
#include "core/regular_spanner.hpp"
#include "slp/slp_builder.hpp"
#include "slp/slp_nfa.hpp"
#include "util/random.hpp"

namespace spanners {
namespace {

Nfa PatternNfa() { return RegularSpanner::Compile("(a|b)*ab(a|b)*ba(a|b)*").vset().nfa(); }

void BM_SlpNfa_CompressedMatrices(benchmark::State& state) {
  // (abba)^(2^e): SLP size grows linearly in e = log2 |D|.
  Slp slp;
  const NodeId abba = BuildBalanced(slp, "abba");
  const NodeId root = BuildPower(slp, abba, uint64_t{1} << state.range(0));
  const Nfa nfa = PatternNfa();
  for (auto _ : state) {
    SlpNfaMatcher matcher(nfa);  // fresh cache: measure full preprocessing
    benchmark::DoNotOptimize(matcher.Accepts(slp, root));
  }
  state.counters["doc_bytes"] = static_cast<double>(slp.Length(root));
  state.counters["slp_nodes"] = static_cast<double>(slp.ReachableSize(root));
}
BENCHMARK(BM_SlpNfa_CompressedMatrices)->DenseRange(4, 20, 4);

void BM_SlpNfa_DecompressAndRun(benchmark::State& state) {
  Slp slp;
  const NodeId abba = BuildBalanced(slp, "abba");
  const NodeId root = BuildPower(slp, abba, uint64_t{1} << state.range(0));
  const Nfa nfa = PatternNfa();
  for (auto _ : state) {
    const std::string doc = slp.Derive(root);
    benchmark::DoNotOptimize(nfa.Accepts(ToSymbols(doc)));
  }
  state.counters["doc_bytes"] = static_cast<double>(slp.Length(root));
}
BENCHMARK(BM_SlpNfa_DecompressAndRun)->DenseRange(4, 16, 4);

void BM_SlpNfa_ModeratelyCompressible(benchmark::State& state) {
  // Re-Pair on boilerplate text: realistic compression rather than the
  // pathological best case.
  Rng rng(5);
  const std::string doc = BoilerplateText(rng, static_cast<std::size_t>(state.range(0)), 0.05);
  Slp slp;
  const NodeId root = BuildRePair(slp, doc);
  const Nfa nfa = RegularSpanner::Compile(".*fox.*").vset().nfa();
  for (auto _ : state) {
    SlpNfaMatcher matcher(nfa);
    benchmark::DoNotOptimize(matcher.Accepts(slp, root));
  }
  state.counters["doc_bytes"] = static_cast<double>(doc.size());
  state.counters["slp_nodes"] = static_cast<double>(slp.ReachableSize(root));
}
BENCHMARK(BM_SlpNfa_ModeratelyCompressible)->RangeMultiplier(4)->Range(16, 1024);

}  // namespace
}  // namespace spanners
