// Experiment E8 (DESIGN.md): the main result of [39] (paper, Section 4.2):
// spanner enumeration over SLP-compressed documents with O(|S|)
// preprocessing and O(log |D|) delay.
//
// Expected shape: on compressible documents, compressed preprocessing
// (per-node matrices) grows with |S| -- exponentially smaller than |D| --
// while uncompressed preprocessing grows with |D|; the compressed delay
// probe grows logarithmically with |D| (paper: O(log |D|) vs the
// uncompressed setting's O(1) after O(|D|) preprocessing).
#include <benchmark/benchmark.h>

#include <algorithm>

#include "core/regular_spanner.hpp"
#include "slp/slp_builder.hpp"
#include "slp/slp_enum.hpp"
#include "util/random.hpp"
#include "util/thread_pool.hpp"

namespace spanners {
namespace {

const char* kPattern = "(a|b)*a{x: b}a(a|b)*";

/// 1-, 4-, and N-thread variants (N = SPANNERS_THREADS / hardware cores)
/// for the level-order matrix preprocessing (slp_schedule.hpp).
std::vector<int64_t> ThreadArgs() {
  std::vector<int64_t> args{1, 4};
  const int64_t n = static_cast<int64_t>(ThreadPool::DefaultThreadCount());
  if (n != 1 && n != 4) args.push_back(n);
  return args;
}

struct CompressedDoc {
  Slp slp;
  NodeId root;
};

/// (aba)^(2^e): every occurrence of "aba(b)a" boundary yields matches.
CompressedDoc PowerDoc(int exponent) {
  CompressedDoc doc;
  const NodeId unit = BuildBalanced(doc.slp, "aaba");
  doc.root = BuildPower(doc.slp, unit, uint64_t{1} << exponent);
  return doc;
}

void BM_SlpEnum_Preprocessing(benchmark::State& state) {
  const RegularSpanner spanner = RegularSpanner::Compile(kPattern);
  CompressedDoc doc = PowerDoc(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    SlpSpannerEvaluator evaluator(&spanner.edva());
    evaluator.SetThreads(static_cast<std::size_t>(state.range(1)));
    // Enumerate just one tuple: forces the full matrix preprocessing but
    // not the output-linear enumeration.
    evaluator.Evaluate(doc.slp, doc.root, [](const SpanTuple&) { return false; });
    benchmark::DoNotOptimize(evaluator.cache_size());
  }
  state.counters["doc_bytes"] = static_cast<double>(doc.slp.Length(doc.root));
  state.counters["slp_nodes"] = static_cast<double>(doc.slp.ReachableSize(doc.root));
  state.counters["threads"] = static_cast<double>(state.range(1));
}
BENCHMARK(BM_SlpEnum_Preprocessing)
    ->ArgsProduct({benchmark::CreateDenseRange(4, 24, 4), ThreadArgs()});

void BM_SlpEnum_PreprocessingBoilerplate(benchmark::State& state) {
  // Re-Pair on boilerplate text: wide topological levels, the realistic
  // target of the parallel fill (compare thread counts at a fixed size).
  Rng rng(5);
  const std::string doc = BoilerplateText(rng, static_cast<std::size_t>(state.range(0)), 0.05);
  Slp slp;
  const NodeId root = BuildRePair(slp, doc);
  const RegularSpanner spanner = RegularSpanner::Compile("(.|\\n)*{x: fox}(.|\\n)*");
  for (auto _ : state) {
    SlpSpannerEvaluator evaluator(&spanner.edva());
    evaluator.SetThreads(static_cast<std::size_t>(state.range(1)));
    evaluator.Evaluate(slp, root, [](const SpanTuple&) { return false; });
    benchmark::DoNotOptimize(evaluator.cache_size());
  }
  state.counters["doc_bytes"] = static_cast<double>(doc.size());
  state.counters["slp_nodes"] = static_cast<double>(slp.ReachableSize(root));
  state.counters["threads"] = static_cast<double>(state.range(1));
}
BENCHMARK(BM_SlpEnum_PreprocessingBoilerplate)
    ->ArgsProduct({benchmark::CreateRange(64, 1024, 4), ThreadArgs()});

void BM_Uncompressed_Preprocessing(benchmark::State& state) {
  const RegularSpanner spanner = RegularSpanner::Compile(kPattern);
  CompressedDoc doc = PowerDoc(static_cast<int>(state.range(0)));
  const std::string expanded = doc.slp.Derive(doc.root);
  for (auto _ : state) {
    Enumerator enumerator(&spanner.edva(), expanded);
    benchmark::DoNotOptimize(&enumerator);
  }
  state.counters["doc_bytes"] = static_cast<double>(expanded.size());
}
BENCHMARK(BM_Uncompressed_Preprocessing)->DenseRange(4, 16, 4);

void BM_SlpEnum_DelayProbe(benchmark::State& state) {
  const RegularSpanner spanner = RegularSpanner::Compile(kPattern);
  CompressedDoc doc = PowerDoc(static_cast<int>(state.range(0)));
  SlpSpannerEvaluator evaluator(&spanner.edva());
  std::size_t max_delay = 0;
  std::size_t tuples = 0;
  for (auto _ : state) {
    max_delay = 0;
    tuples = 0;
    evaluator.Evaluate(doc.slp, doc.root, [&](const SpanTuple&) {
      max_delay = std::max(max_delay, evaluator.last_delay_steps());
      return ++tuples < 4096;  // probe a fixed number of tuples
    });
  }
  state.counters["log2_doc"] = static_cast<double>(state.range(0)) + 2;
  state.counters["max_delay_steps"] = static_cast<double>(max_delay);
  state.counters["tuples_probed"] = static_cast<double>(tuples);
}
BENCHMARK(BM_SlpEnum_DelayProbe)->DenseRange(4, 20, 4);

void BM_SlpEnum_RealisticRePair(benchmark::State& state) {
  // End-to-end on Re-Pair-compressed synthetic logs: count all matches.
  Rng rng(17);
  const std::string log = SyntheticLog(rng, static_cast<std::size_t>(state.range(0)));
  Slp slp;
  const NodeId root = BuildRePair(slp, log);
  const RegularSpanner spanner = RegularSpanner::Compile("(.|\\n)*status={x: 404}(.|\\n)*");
  SlpSpannerEvaluator evaluator(&spanner.edva());
  std::size_t matches = 0;
  for (auto _ : state) {
    matches = 0;
    evaluator.Evaluate(slp, root, [&](const SpanTuple&) {
      ++matches;
      return true;
    });
  }
  state.counters["log_bytes"] = static_cast<double>(log.size());
  state.counters["slp_nodes"] = static_cast<double>(slp.ReachableSize(root));
  state.counters["matches"] = static_cast<double>(matches);
}
BENCHMARK(BM_SlpEnum_RealisticRePair)->RangeMultiplier(4)->Range(64, 1024);

}  // namespace
}  // namespace spanners
