// Experiment E3 (DESIGN.md): Section 2.4 -- core-spanner NonEmptiness is
// NP-hard, witnessed by pattern matching with variables.
//
// Expected shape: backtracking steps (and time) grow exponentially with the
// number of pattern variables on non-matching instances, while the document
// stays fixed; the regular-spanner NonEmptiness baseline on the same
// documents stays flat.
#include <benchmark/benchmark.h>

#include "core/decision.hpp"
#include "core/pattern_matching.hpp"

namespace spanners {
namespace {

/// Hard non-matching instance: x1 x1 x2 x2 ... xk xk b against a^n --
/// every split must be exhausted before rejecting.
Pattern HardPattern(int k) {
  std::string spec;
  for (int v = 0; v < k; ++v) {
    const std::string name = "x" + std::to_string(v);
    spec += "&" + name + ";&" + name + ";";
  }
  spec += "b";
  return Pattern::Parse(spec);
}

void BM_PatternMatching_Steps(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const Pattern pattern = HardPattern(k);
  const std::string doc(24, 'a');
  bool matched = true;
  for (auto _ : state) {
    matched = pattern.Matches(doc);
    benchmark::DoNotOptimize(matched);
  }
  state.counters["variables"] = static_cast<double>(k);
  state.counters["backtrack_steps"] = static_cast<double>(pattern.last_steps());
  state.counters["matched"] = matched ? 1 : 0;
}
BENCHMARK(BM_PatternMatching_Steps)->DenseRange(1, 6);

void BM_PatternMatching_ViaCoreSpanner(benchmark::State& state) {
  // The paper's reduction: NonEmptiness of pi_emptyset(selections(regex)).
  const int k = static_cast<int>(state.range(0));
  const Pattern pattern = HardPattern(k);
  const CoreNormalForm core = pattern.ToCoreSpanner("ab");
  const std::string doc(12, 'a');
  for (auto _ : state) {
    benchmark::DoNotOptimize(CoreNonEmptiness(core, doc));
  }
  state.counters["variables"] = static_cast<double>(k);
  state.counters["automaton_states"] = static_cast<double>(core.automaton.edva().num_states());
}
BENCHMARK(BM_PatternMatching_ViaCoreSpanner)->DenseRange(1, 3);

void BM_RegularBaseline_SameDocument(benchmark::State& state) {
  // Regular-spanner NonEmptiness on the same documents: flat and fast.
  const RegularSpanner spanner = RegularSpanner::Compile("{x: a*}b");
  const std::string doc(24, 'a');
  for (auto _ : state) {
    benchmark::DoNotOptimize(RegularNonEmptiness(spanner, doc));
  }
}
BENCHMARK(BM_RegularBaseline_SameDocument);

void BM_PatternMatching_CopyLanguage(benchmark::State& state) {
  // ww (copy language): matching instances scale with |D| but stay
  // polynomial for one variable; the contrast axis to the k-sweep above.
  const Pattern pattern = Pattern::Parse("&w;&w;");
  std::string doc;
  for (int i = 0; i < state.range(0); ++i) doc += "ab";
  doc += doc;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pattern.Matches(doc));
  }
  state.counters["doc_bytes"] = static_cast<double>(doc.size());
  state.counters["backtrack_steps"] = static_cast<double>(pattern.last_steps());
}
BENCHMARK(BM_PatternMatching_CopyLanguage)->RangeMultiplier(2)->Range(8, 128);

}  // namespace
}  // namespace spanners
