// Experiment E12 (DESIGN.md): substrate sanity for Section 4 -- SLP
// compression rates and build throughput of the three builders on the
// synthetic workload families (logs, DNA-like, boilerplate text).
//
// Expected shape: Re-Pair compresses repetitive inputs far below input
// size (boilerplate with low noise best, random worst); compressibility
// degrades smoothly as the noise knob rises; the balanced builder never
// compresses but is fastest.
#include <benchmark/benchmark.h>

#include "slp/slp_builder.hpp"
#include "util/random.hpp"

namespace spanners {
namespace {

void ReportRatio(benchmark::State& state, const std::string& doc, NodeId root,
                 const Slp& slp) {
  state.counters["doc_bytes"] = static_cast<double>(doc.size());
  state.counters["slp_nodes"] = static_cast<double>(slp.ReachableSize(root));
  state.counters["chars_per_node"] =
      static_cast<double>(doc.size()) / static_cast<double>(slp.ReachableSize(root));
}

void BM_RePair_Boilerplate(benchmark::State& state) {
  Rng rng(1);
  const double noise = static_cast<double>(state.range(0)) / 100.0;
  const std::string doc = BoilerplateText(rng, 256, noise);
  Slp slp;
  NodeId root = kNoNode;
  for (auto _ : state) {
    Slp fresh;
    root = BuildRePair(fresh, doc);
    benchmark::DoNotOptimize(root);
    slp = std::move(fresh);
  }
  ReportRatio(state, doc, root, slp);
  state.counters["noise_pct"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_RePair_Boilerplate)->Arg(0)->Arg(2)->Arg(10)->Arg(50);

void BM_RePair_SyntheticLog(benchmark::State& state) {
  Rng rng(2);
  const std::string doc = SyntheticLog(rng, static_cast<std::size_t>(state.range(0)));
  Slp slp;
  NodeId root = kNoNode;
  for (auto _ : state) {
    Slp fresh;
    root = BuildRePair(fresh, doc);
    benchmark::DoNotOptimize(root);
    slp = std::move(fresh);
  }
  ReportRatio(state, doc, root, slp);
}
BENCHMARK(BM_RePair_SyntheticLog)->RangeMultiplier(4)->Range(64, 1024);

void BM_RePair_DnaLike(benchmark::State& state) {
  Rng rng(3);
  const std::string doc =
      DnaLike(rng, static_cast<std::size_t>(state.range(0)), 8, 32);
  Slp slp;
  NodeId root = kNoNode;
  for (auto _ : state) {
    Slp fresh;
    root = BuildRePair(fresh, doc);
    benchmark::DoNotOptimize(root);
    slp = std::move(fresh);
  }
  ReportRatio(state, doc, root, slp);
}
BENCHMARK(BM_RePair_DnaLike)->RangeMultiplier(4)->Range(1 << 10, 1 << 16);

void BM_Balanced_Baseline(benchmark::State& state) {
  Rng rng(4);
  const std::string doc = RandomString(rng, "acgt", static_cast<std::size_t>(state.range(0)));
  Slp slp;
  NodeId root = kNoNode;
  for (auto _ : state) {
    Slp fresh;
    root = BuildBalanced(fresh, doc);
    benchmark::DoNotOptimize(root);
    slp = std::move(fresh);
  }
  ReportRatio(state, doc, root, slp);
}
BENCHMARK(BM_Balanced_Baseline)->RangeMultiplier(4)->Range(1 << 10, 1 << 16);

void BM_RunLength_Runs(benchmark::State& state) {
  Rng rng(5);
  // Long runs: run-length front end shines.
  std::string doc;
  while (doc.size() < static_cast<std::size_t>(state.range(0))) {
    doc.append(8 + rng.NextBelow(64), static_cast<char>('a' + rng.NextBelow(4)));
  }
  Slp slp;
  NodeId root = kNoNode;
  for (auto _ : state) {
    Slp fresh;
    root = BuildRunLength(fresh, doc);
    benchmark::DoNotOptimize(root);
    slp = std::move(fresh);
  }
  ReportRatio(state, doc, root, slp);
}
BENCHMARK(BM_RunLength_Runs)->RangeMultiplier(4)->Range(1 << 10, 1 << 16);

}  // namespace
}  // namespace spanners
