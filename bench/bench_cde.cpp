// Experiment E10 (DESIGN.md): Section 4.3 / [40] -- complex document
// editing on strongly balanced SLPs in O(|φ| * log d), including the
// maintenance of the spanner-enumeration structures.
//
// Expected shape: CDE update time is nearly flat as the document length
// doubles (only the log factor grows), while the recompress-from-scratch
// baseline grows linearly; incremental matrix maintenance touches only the
// nodes the update created.
#include <benchmark/benchmark.h>

#include "core/regular_spanner.hpp"
#include "slp/avl_grammar.hpp"
#include "slp/cde.hpp"
#include "slp/slp_builder.hpp"
#include "slp/slp_enum.hpp"
#include "util/random.hpp"
#include "util/thread_pool.hpp"

namespace spanners {
namespace {

std::string MakeDoc(std::size_t n) {
  Rng rng(12);
  return DnaLike(rng, n, 8, 32);
}

/// 1-, 4-, and N-thread variants for the incremental matrix maintenance.
std::vector<int64_t> ThreadArgs() {
  std::vector<int64_t> args{1, 4};
  const int64_t n = static_cast<int64_t>(ThreadPool::DefaultThreadCount());
  if (n != 1 && n != 4) args.push_back(n);
  return args;
}

void BM_Cde_Update(benchmark::State& state) {
  const std::string text = MakeDoc(static_cast<std::size_t>(state.range(0)));
  DocumentDatabase base;
  base.AddDocument(Rebalance(base.slp(), BuildRePair(base.slp(), text)));
  const std::string expression =
      "concat(insert(D1, extract(D1, 17, 170), " + std::to_string(text.size() / 2) + "), D1)";
  CdeParseResult parsed = ParseCde(expression);
  for (auto _ : state) {
    state.PauseTiming();
    DocumentDatabase database = base;  // fresh copy per update
    state.ResumeTiming();
    const NodeId result = EvalCde(&database, *parsed.expr);
    benchmark::DoNotOptimize(result);
  }
  state.counters["doc_bytes"] = static_cast<double>(text.size());
  state.counters["phi_size"] = static_cast<double>(parsed.expr->size());
}
BENCHMARK(BM_Cde_Update)->RangeMultiplier(4)->Range(1 << 10, 1 << 18);

void BM_Cde_RecompressBaseline(benchmark::State& state) {
  // The naive alternative: materialise the edited document and re-run the
  // grammar compressor from scratch.
  const std::string text = MakeDoc(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    std::string edited = text;
    edited.insert(text.size() / 2, text.substr(16, 154));
    edited += text;
    Slp slp;
    benchmark::DoNotOptimize(BuildRePair(slp, edited));
  }
  state.counters["doc_bytes"] = static_cast<double>(text.size());
}
BENCHMARK(BM_Cde_RecompressBaseline)->RangeMultiplier(4)->Range(1 << 10, 1 << 16);

void BM_Cde_UpdateThenQuery(benchmark::State& state) {
  // Update + incremental maintenance + re-enumeration: the end-to-end
  // workflow of [40]. Matrices persist across updates; only new nodes pay.
  const std::string text = MakeDoc(static_cast<std::size_t>(state.range(0)));
  DocumentDatabase database;
  database.AddDocument(Rebalance(database.slp(), BuildRePair(database.slp(), text)));
  const RegularSpanner spanner = RegularSpanner::Compile(".*{x: acgt}.*");
  SlpSpannerEvaluator evaluator(&spanner.edva());
  evaluator.SetThreads(static_cast<std::size_t>(state.range(1)));
  // Warm the cache with the base document.
  evaluator.Evaluate(database.slp(), database.document(0),
                     [](const SpanTuple&) { return false; });
  uint64_t offset = 1;
  std::size_t last_growth = 0;
  for (auto _ : state) {
    const uint64_t length = database.slp().Length(database.document(0));
    const uint64_t position = 1 + (offset * 977) % (length / 2);
    offset++;
    const std::string expression = "copy(D1, " + std::to_string(position) + ", " +
                                   std::to_string(position + 63) + ", 1)";
    const std::size_t cache_before = evaluator.cache_size();
    const std::size_t index = ApplyCde(&database, expression);
    std::size_t first_matches = 0;
    evaluator.Evaluate(database.slp(), database.document(index),
                       [&](const SpanTuple&) { return ++first_matches < 8; });
    last_growth = evaluator.cache_size() - cache_before;
    benchmark::DoNotOptimize(first_matches);
    database.SetDocument(0, database.document(0));  // keep querying the base
  }
  state.counters["doc_bytes"] = static_cast<double>(text.size());
  state.counters["matrices_per_update"] = static_cast<double>(last_growth);
  state.counters["threads"] = static_cast<double>(state.range(1));
}
BENCHMARK(BM_Cde_UpdateThenQuery)
    ->ArgsProduct({benchmark::CreateRange(1 << 12, 1 << 18, 4), ThreadArgs()});

}  // namespace
}  // namespace spanners
