// Experiment E1 (DESIGN.md): Section 2.5 of the paper -- enumeration of
// regular-spanner results with linear preprocessing and constant delay.
//
// Expected shape: preprocessing time grows linearly with |D|; the maximum
// number of enumeration steps between consecutive tuples (delay) stays flat
// as |D| grows by 64x.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "core/regular_spanner.hpp"
#include "util/random.hpp"

namespace spanners {
namespace {

std::string Document(std::size_t n) {
  Rng rng(4242);
  return RandomString(rng, "ab", n);
}

// Preprocessing phase alone: build the alive/jump tables.
void BM_Enum_Preprocessing(benchmark::State& state) {
  const RegularSpanner spanner = RegularSpanner::Compile("(a|b)*a{x: b+}a(a|b)*");
  const std::string doc = Document(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    Enumerator enumerator(&spanner.edva(), doc);
    benchmark::DoNotOptimize(&enumerator);
  }
  state.SetComplexityN(state.range(0));
  state.counters["bytes"] = static_cast<double>(doc.size());
}
BENCHMARK(BM_Enum_Preprocessing)->RangeMultiplier(4)->Range(1 << 10, 1 << 16)
    ->Complexity(benchmark::oN);

// Full enumeration; reports the delay distribution.
void BM_Enum_Delay(benchmark::State& state) {
  const RegularSpanner spanner = RegularSpanner::Compile("(a|b)*a{x: b+}a(a|b)*");
  const std::string doc = Document(static_cast<std::size_t>(state.range(0)));
  std::size_t max_delay = 0;
  double total_delay = 0;
  std::size_t tuples = 0;
  for (auto _ : state) {
    Enumerator enumerator(&spanner.edva(), doc);
    max_delay = 0;
    total_delay = 0;
    tuples = 0;
    while (enumerator.Next()) {
      max_delay = std::max(max_delay, enumerator.last_delay_steps());
      total_delay += static_cast<double>(enumerator.last_delay_steps());
      ++tuples;
    }
  }
  state.counters["tuples"] = static_cast<double>(tuples);
  state.counters["max_delay_steps"] = static_cast<double>(max_delay);
  state.counters["avg_delay_steps"] = tuples ? total_delay / static_cast<double>(tuples) : 0;
}
BENCHMARK(BM_Enum_Delay)->RangeMultiplier(4)->Range(1 << 10, 1 << 16);

// The same task via full materialisation, for context (output-bound).
void BM_Enum_Materialize(benchmark::State& state) {
  const RegularSpanner spanner = RegularSpanner::Compile("(a|b)*a{x: b+}a(a|b)*");
  const std::string doc = Document(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(spanner.Evaluate(doc));
  }
}
BENCHMARK(BM_Enum_Materialize)->RangeMultiplier(4)->Range(1 << 10, 1 << 14);

// Multi-variable spanner: delay scales with the number of variables k (the
// "constant" of constant delay), not with |D|.
void BM_Enum_DelayVsVariables(benchmark::State& state) {
  std::string pattern = "(a|b)*";
  const int k = static_cast<int>(state.range(0));
  for (int v = 0; v < k; ++v) {
    pattern += "a{x" + std::to_string(v) + ": b+}";
  }
  pattern += "a(a|b)*";
  const RegularSpanner spanner = RegularSpanner::Compile(pattern);
  const std::string doc = Document(1 << 12);
  std::size_t max_delay = 0;
  for (auto _ : state) {
    Enumerator enumerator(&spanner.edva(), doc);
    max_delay = 0;
    while (enumerator.Next()) {
      max_delay = std::max(max_delay, enumerator.last_delay_steps());
    }
  }
  state.counters["k"] = static_cast<double>(k);
  state.counters["max_delay_steps"] = static_cast<double>(max_delay);
}
BENCHMARK(BM_Enum_DelayVsVariables)->DenseRange(1, 4);

}  // namespace
}  // namespace spanners
