#!/usr/bin/env bash
# Runs the SLP evaluation benchmarks (experiments E7, E8, E10 in
# EXPERIMENTS.md) plus the unified-engine plan ablation (BM_Engine_*) with
# --benchmark_format=json and aggregates the reports into a single
# BENCH_PR2.json at the repo root, stamped with the git revision, the
# machine's core count, and the thread knob in effect.
#
# Usage: bench/run_benches.sh [build-dir] [output-json]
#   SPANNERS_THREADS=8 bench/run_benches.sh build BENCH_PR2.json
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
out_file="${2:-$repo_root/BENCH_PR2.json}"
tmp_dir="$(mktemp -d)"
trap 'rm -rf "$tmp_dir"' EXIT

git_sha="$(git -C "$repo_root" rev-parse HEAD 2>/dev/null || echo unknown)"

benches=(bench_slp_nfa bench_slp_enum bench_cde bench_representations)
filters=(
  'BM_SlpNfa_(CompressedMatrices|KernelComparison)'  # E7 + kernel A/B
  'BM_SlpEnum_Preprocessing'                          # E8 preprocessing
  'BM_Cde_'                                           # E10
  'BM_Engine_'                                        # engine plan ablation
)

for i in "${!benches[@]}"; do
  bin="$build_dir/bench/${benches[$i]}"
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not built (cmake --build $build_dir)" >&2
    exit 1
  fi
  echo ">>> ${benches[$i]} --benchmark_filter=${filters[$i]}" >&2
  "$bin" --benchmark_filter="${filters[$i]}" \
         --benchmark_format=json \
         --benchmark_min_time=0.05 \
         > "$tmp_dir/${benches[$i]}.json"
done

GIT_SHA="$git_sha" python3 - "$out_file" "$tmp_dir" "${benches[@]}" <<'PY'
import json, os, sys

out_file, tmp_dir, names = sys.argv[1], sys.argv[2], sys.argv[3:]
merged = {"experiments": {}, "context": None}
for name in names:
    with open(os.path.join(tmp_dir, name + ".json")) as f:
        report = json.load(f)
    if merged["context"] is None:
        merged["context"] = report.get("context", {})
    merged["experiments"][name] = report.get("benchmarks", [])

nproc = os.cpu_count()
threads_knob = os.environ.get("SPANNERS_THREADS", "")
merged["env"] = {
    "git_sha": os.environ.get("GIT_SHA", "unknown"),
    "SPANNERS_THREADS": threads_knob,
    "SPANNERS_MM_KERNEL": os.environ.get("SPANNERS_MM_KERNEL", ""),
    # The thread count the pool actually uses: the knob when set, else nproc.
    "effective_threads": int(threads_knob) if threads_knob.isdigit() else nproc,
    "nproc": nproc,
}
with open(out_file, "w") as f:
    json.dump(merged, f, indent=1)
print(f"wrote {out_file}: "
      + ", ".join(f"{k}={len(v)} series" for k, v in merged["experiments"].items()))
PY
