#!/usr/bin/env bash
# Runs the SLP evaluation benchmarks (experiments E7, E8, E10 in
# EXPERIMENTS.md) plus the unified-engine plan ablation (BM_Engine_*) with
# --benchmark_format=json and aggregates the reports into a single JSON at
# the repo root, stamped with the git revision, the machine's core count,
# the thread knob in effect, a metrics snapshot from an instrumented
# engine run (SPANNERS_TRACE=counters quickstart --stats; DESIGN.md §1.9),
# a store_metrics_snapshot from an instrumented store_service run (WAL,
# GC-pause, SLO, and cache series, with its OpenMetrics export validated by
# bench/check_openmetrics.py; DESIGN.md §1.14), a serving benchmark (a live
# 2-shard spanner server driven by bench/loadgen at 90/10 read/write, with
# the pinned-snapshot isolation audit; §1.15), and the differential-testing
# footprint (sweep iteration budget and fuzz seed-corpus sizes; §1.11).
#
# The output file is written atomically (tmp + rename) and only after every
# per-benchmark report validated as complete JSON: a crashing or
# partially-writing benchmark binary fails the script with a non-zero exit
# instead of stamping a truncated report (ISSUE 6).
#
# After a successful stamp the bench-regression gate compares the run
# against bench/baseline.json (bench/check_regression.py; DESIGN.md §1.12):
#   SPANNERS_BENCH_GATE=off            skip the gate (stamp only)
#   SPANNERS_BENCH_THRESHOLD_PCT=25    per-benchmark slowdown tolerance
# A comparison report lands next to the output as <output>.regressions.json.
#
# Usage: bench/run_benches.sh [output-json] [build-dir]
#   SPANNERS_THREADS=8 bench/run_benches.sh BENCH_PR10.json build
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
out_file="${1:-$repo_root/BENCH_PR10.json}"
build_dir="${2:-$repo_root/build}"
tmp_dir="$(mktemp -d)"
trap 'rm -rf "$tmp_dir"' EXIT

git_sha="$(git -C "$repo_root" rev-parse HEAD 2>/dev/null || echo unknown)"

benches=(bench_slp_nfa bench_slp_enum bench_cde bench_representations bench_store)
filters=(
  'BM_SlpNfa_(CompressedMatrices|KernelComparison)'  # E7 + kernel A/B
  'BM_SlpEnum_Preprocessing'                          # E8 preprocessing
  'BM_Cde_'                                           # E10
  'BM_Engine_'                                        # engine plan ablation
  'BM_Store_'                                         # store serving paths
)

for i in "${!benches[@]}"; do
  bin="$build_dir/bench/${benches[$i]}"
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not built (cmake --build $build_dir)" >&2
    exit 1
  fi
  echo ">>> ${benches[$i]} --benchmark_filter=${filters[$i]}" >&2
  # Repetitions + a long-enough min time: the gate compares the
  # per-benchmark minimum, which is robust against scheduler noise on
  # small/shared boxes (a single 50ms run on a busy single-core machine can
  # read 2x high from unamortized warm-up alone; the min of repeated 200ms
  # runs rarely is).
  if ! "$bin" --benchmark_filter="${filters[$i]}" \
              --benchmark_format=json \
              --benchmark_min_time="${SPANNERS_BENCH_MIN_TIME:-0.2}" \
              --benchmark_repetitions="${SPANNERS_BENCH_REPS:-3}" \
              --benchmark_report_aggregates_only=false \
              > "$tmp_dir/${benches[$i]}.json"; then
    echo "error: ${benches[$i]} exited non-zero; refusing to stamp a report" >&2
    exit 1
  fi
done

# A metrics snapshot of a real engine run: quickstart exercises compile,
# plan, evaluate, and enumeration, and --stats prints every registered
# metric in the stable one-line-per-metric format parsed below.
quickstart="$build_dir/examples/example_quickstart"
if [[ -x "$quickstart" ]]; then
  SPANNERS_TRACE=counters "$quickstart" --stats > "$tmp_dir/quickstart_stats.txt" \
    || echo "warning: quickstart --stats failed; snapshot will be empty" >&2
else
  echo "warning: $quickstart not built; metrics snapshot will be empty" >&2
  : > "$tmp_dir/quickstart_stats.txt"
fi

# A metrics snapshot of a serving-store run (DESIGN.md §1.14): store_service
# exercises commits, the prepared-query cache, WAL fsyncs, GC pauses, and
# the delay-SLO watchdog. The run also writes an OpenMetrics file which is
# conformance-checked here, so a bench stamp doubles as an exporter test.
store_service="$build_dir/examples/example_store_service"
if [[ -x "$store_service" ]]; then
  if SPANNERS_TRACE=counters SPANNERS_SLO_DELAY_STEPS=1 "$store_service" 2 150 \
       --snapshot-dir="$tmp_dir/store_state" \
       --metrics-out="$tmp_dir/store_metrics.txt" --stats \
       > "$tmp_dir/store_service_stats.txt"; then
    python3 "$repo_root/bench/check_openmetrics.py" "$tmp_dir/store_metrics.txt" \
      --require-nonzero spanners_wal_appends \
      --require-nonzero spanners_slo_delay_checks \
      || { echo "error: store_service OpenMetrics export failed validation" >&2; exit 1; }
  else
    echo "warning: store_service --stats failed; store snapshot will be empty" >&2
    : > "$tmp_dir/store_service_stats.txt"
  fi
else
  echo "warning: $store_service not built; store snapshot will be empty" >&2
  : > "$tmp_dir/store_service_stats.txt"
fi

# A serving benchmark (DESIGN.md §1.15): start a 2-shard spanner server on
# an ephemeral port, drive it with the closed-loop load generator at a
# 90/10 read/write mix, and record p50/p99/throughput. The loadgen audits a
# pinned snapshot as it runs, so the serving numbers double as a wire-level
# isolation check (non-zero violations fail the stamp).
spanner_server="$build_dir/examples/example_spanner_server"
loadgen="$build_dir/bench/loadgen"
serving_json="$tmp_dir/serving.json"
if [[ -x "$spanner_server" && -x "$loadgen" ]]; then
  "$spanner_server" --shards=2 --port=0 --seed-docs=8 \
    > "$tmp_dir/server_stdout.txt" 2>&1 &
  server_pid=$!
  port=""
  for _ in $(seq 1 100); do
    port="$(sed -n 's/^listening on \([0-9]*\)$/\1/p' "$tmp_dir/server_stdout.txt")"
    [[ -n "$port" ]] && break
    kill -0 "$server_pid" 2>/dev/null || break
    sleep 0.1
  done
  if [[ -z "$port" ]]; then
    echo "error: spanner_server never reported its port" >&2
    cat "$tmp_dir/server_stdout.txt" >&2
    kill "$server_pid" 2>/dev/null || true
    exit 1
  fi
  if ! "$loadgen" --port="$port" \
        --connections="${SPANNERS_LOADGEN_CONNECTIONS:-4}" \
        --duration="${SPANNERS_LOADGEN_DURATION:-5}" \
        --read-ratio=0.9 --json-out="$serving_json"; then
    echo "error: loadgen reported errors or isolation violations" >&2
    kill "$server_pid" 2>/dev/null || true
    exit 1
  fi
  kill -TERM "$server_pid" 2>/dev/null || true
  wait "$server_pid" || true
else
  echo "warning: spanner_server/loadgen not built; serving section skipped" >&2
  : > "$serving_json"
fi

# The differential-testing footprint (DESIGN.md §1.11): the per-run
# comparison budget of tests/differential_test.cpp and the seed-corpus size
# of every fuzz target.
diff_iterations="$(sed -n 's/.*kDifferentialIterations = \([0-9]*\).*/\1/p' \
  "$repo_root/tests/differential_test.cpp" | head -1)"
corpus_counts=""
for dir in "$repo_root"/fuzz/corpus/*/; do
  name="$(basename "$dir")"
  corpus_counts+="${corpus_counts:+,}fuzz_${name}=$(find "$dir" -type f | wc -l)"
done

# Merge into the output. The python step validates each per-bench report
# (parseable JSON with a non-empty "benchmarks" array) and writes to a
# sibling temp file renamed into place only on success, so a failure part
# way through can never leave a truncated $out_file behind.
GIT_SHA="$git_sha" DIFF_ITERATIONS="${diff_iterations:-0}" \
CORPUS_COUNTS="$corpus_counts" \
python3 - "$out_file" "$tmp_dir" "${benches[@]}" <<'PY'
import json, os, re, sys

out_file, tmp_dir, names = sys.argv[1], sys.argv[2], sys.argv[3:]
merged = {"experiments": {}, "context": None}
for name in names:
    path = os.path.join(tmp_dir, name + ".json")
    try:
        with open(path) as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        raise SystemExit(f"error: {name} emitted unparseable output ({err}); "
                         "refusing to stamp a report")
    benchmarks = report.get("benchmarks")
    if not benchmarks:
        raise SystemExit(f"error: {name} report has no benchmarks (crashed "
                         "after printing context?); refusing to stamp a report")
    if merged["context"] is None:
        merged["context"] = report.get("context", {})
    merged["experiments"][name] = benchmarks

# Parse the --stats reports: "counter <name> <n>", "gauge <name> <n>",
# "histogram <name> count=... sum=... mean=... p50=... p95=... p99=... max=...".
def parse_stats(path):
    snapshot = {"counters": {}, "gauges": {}, "histograms": {}}
    with open(path) as f:
        for line in f:
            parts = line.split()
            if len(parts) >= 3 and parts[0] == "counter":
                snapshot["counters"][parts[1]] = int(parts[2])
            elif len(parts) >= 3 and parts[0] == "gauge":
                snapshot["gauges"][parts[1]] = int(parts[2])
            elif len(parts) >= 3 and parts[0] == "histogram":
                fields = dict(kv.split("=", 1) for kv in parts[2:] if "=" in kv)
                snapshot["histograms"][parts[1]] = {
                    k: float(v) if re.search(r"[.eE]", v) else int(v)
                    for k, v in fields.items()
                }
    return snapshot

snapshot = parse_stats(os.path.join(tmp_dir, "quickstart_stats.txt"))
merged["metrics_snapshot"] = snapshot

# The serving benchmark (§1.15): loadgen's closed-loop numbers against a
# live 2-shard server -- p50/p99 split by read/write, queries/s, and the
# pinned-snapshot isolation audit (violations must be 0 to get here).
serving_path = os.path.join(tmp_dir, "serving.json")
try:
    with open(serving_path) as f:
        merged["serving"] = json.load(f)
except (OSError, json.JSONDecodeError):
    merged["serving"] = None
# The serving-store run (WAL, GC, SLO, prepared-cache series; §1.14).
merged["store_metrics_snapshot"] = parse_stats(
    os.path.join(tmp_dir, "store_service_stats.txt"))

# The differential-testing footprint: sweep budget + seed corpus sizes.
corpus = {}
for entry in os.environ.get("CORPUS_COUNTS", "").split(","):
    if "=" in entry:
        target, count = entry.split("=", 1)
        corpus[target] = int(count)
merged["testing"] = {
    "differential_iterations": int(os.environ.get("DIFF_ITERATIONS", "0")),
    "seed_corpus_files": corpus,
}

nproc = os.cpu_count()
threads_knob = os.environ.get("SPANNERS_THREADS", "")
merged["env"] = {
    "git_sha": os.environ.get("GIT_SHA", "unknown"),
    "SPANNERS_THREADS": threads_knob,
    "SPANNERS_MM_KERNEL": os.environ.get("SPANNERS_MM_KERNEL", ""),
    "SPANNERS_TRACE": os.environ.get("SPANNERS_TRACE", ""),
    # The thread count the pool actually uses: the knob when set, else nproc.
    "effective_threads": int(threads_knob) if threads_knob.isdigit() else nproc,
    "nproc": nproc,
}
# Atomic stamp: write a sibling temp file, rename over the target. Same
# directory, so the rename cannot cross filesystems.
staging = out_file + ".tmp"
with open(staging, "w") as f:
    json.dump(merged, f, indent=1)
os.replace(staging, out_file)
print(f"wrote {out_file}: "
      + ", ".join(f"{k}={len(v)} series" for k, v in merged["experiments"].items())
      + f", metrics_snapshot={len(snapshot['counters'])} counters"
      + f", store_metrics_snapshot="
        f"{len(merged['store_metrics_snapshot']['counters'])} counters"
      + f", differential_iterations={merged['testing']['differential_iterations']}"
      + f", corpus={sum(corpus.values())} files"
      + (f", serving={merged['serving']['queries_per_s']:.0f} queries/s"
         if merged.get("serving") else ", serving=skipped"))
PY

# --- bench-regression gate (DESIGN.md §1.12) ---------------------------------
if [[ "${SPANNERS_BENCH_GATE:-on}" == "off" ]]; then
  echo "bench-regression gate: skipped (SPANNERS_BENCH_GATE=off)" >&2
elif [[ ! -f "$repo_root/bench/baseline.json" ]]; then
  echo "warning: bench/baseline.json missing; regression gate skipped" >&2
  echo "  (rebase with: python3 bench/check_regression.py --rebase $out_file)" >&2
else
  python3 "$repo_root/bench/check_regression.py" \
    --current "$out_file" \
    --baseline "$repo_root/bench/baseline.json" \
    --threshold-pct "${SPANNERS_BENCH_THRESHOLD_PCT:-25}" \
    --report "${out_file%.json}.regressions.json"
fi
