// Store serving-path benchmarks (DESIGN.md §1.10): what the snapshot
// protocol, the prepared-state cache, and the QueryAll fan-out cost.
//
// Expected shapes: snapshot cost is flat in the number of documents (one
// shared_ptr load; the version is immutable, never copied); a warm
// prepared-state cache turns evaluation into a map lookup, while a 1-byte
// budget (eviction on every retention) pays full evaluation each time; CDE
// commits stay near-flat as documents grow (O(|phi| log d) plus the
// reachability walk); QueryAll amortises shared matrix state across the
// fan-out.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>

#include "engine/session.hpp"
#include "store/persist.hpp"
#include "store/store.hpp"
#include "util/random.hpp"
#include "util/thread_pool.hpp"

namespace spanners {
namespace {

constexpr const char* kPattern = "(.|\\n)*{hit: fox} {next: [a-z]+}(.|\\n)*";

void FillStore(DocumentStore* store, std::size_t num_docs, std::size_t paragraphs) {
  Rng rng(5);
  WriteBatch batch;
  for (std::size_t i = 0; i < num_docs; ++i) {
    batch.Insert(BoilerplateText(rng, paragraphs, 0.02));
  }
  if (!store->Commit(batch).ok()) std::abort();
}

/// Snapshot cost vs document count: one atomic load regardless of size.
void BM_Store_Snapshot(benchmark::State& state) {
  DocumentStore store;
  FillStore(&store, static_cast<std::size_t>(state.range(0)), 4);
  for (auto _ : state) {
    StoreSnapshot snapshot = store.Snapshot();
    benchmark::DoNotOptimize(snapshot.version());
  }
  state.counters["docs"] = static_cast<double>(store.Stats().num_documents);
}
BENCHMARK(BM_Store_Snapshot)->Arg(1)->Arg(16)->Arg(256)->Arg(4096);

/// Cache-hit-rate ablation: the same (query, document) evaluation with a
/// warm byte budget vs a 1-byte budget that can never retain anything.
void BM_Store_QueryWarmCache(benchmark::State& state) {
  DocumentStore store;
  FillStore(&store, 1, 20);
  Session session;
  const CompiledQuery* query = *session.Compile(kPattern);
  StoreSnapshot snapshot = store.Snapshot();
  (void)session.Evaluate(*query, snapshot, 1);  // warm the caches
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.Evaluate(*query, snapshot, 1));
  }
  const PreparedCacheStats stats = store.cache().stats();
  state.counters["hit_rate"] =
      static_cast<double>(stats.hits) / static_cast<double>(stats.hits + stats.misses);
}
BENCHMARK(BM_Store_QueryWarmCache);

void BM_Store_QueryNoCache(benchmark::State& state) {
  StoreOptions options;
  options.cache_budget_bytes = 1;  // every retention evicts immediately
  DocumentStore store(options);
  FillStore(&store, 1, 20);
  Session session;
  const CompiledQuery* query = *session.Compile(kPattern);
  StoreSnapshot snapshot = store.Snapshot();
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.Evaluate(*query, snapshot, 1));
  }
  const PreparedCacheStats stats = store.cache().stats();
  state.counters["hit_rate"] =
      static_cast<double>(stats.hits) / static_cast<double>(stats.hits + stats.misses);
}
BENCHMARK(BM_Store_QueryNoCache);

/// Commit cost vs document length: a fixed CDE rotation on one document.
/// Near-flat in the document size (AVL splits/concats are O(log d); the
/// per-commit reachability walk is the linear floor).
void BM_Store_CommitCdeEdit(benchmark::State& state) {
  DocumentStore store;
  Rng rng(9);
  WriteBatch ingest;
  ingest.Insert(DnaLike(rng, static_cast<std::size_t>(state.range(0)), 8, 32));
  if (!store.Commit(ingest).ok()) std::abort();
  const uint64_t length = store.Snapshot().LengthOf(1);
  const std::string expr =
      "extract(concat(D1, D1), 9, " + std::to_string(length + 8) + ")";
  for (auto _ : state) {
    if (!store.EditDocument(1, expr).ok()) std::abort();
  }
  state.counters["doc_bytes"] = static_cast<double>(length);
  state.counters["gc_compactions"] =
      static_cast<double>(store.Stats().gc_compactions);
}
BENCHMARK(BM_Store_CommitCdeEdit)->Arg(1 << 12)->Arg(1 << 14)->Arg(1 << 16);

/// QueryAll fan-out scaling over a fixed corpus, by worker thread count.
void BM_Store_QueryAll(benchmark::State& state) {
  StoreOptions options;
  options.threads = static_cast<std::size_t>(state.range(0));
  DocumentStore store(options);
  FillStore(&store, 24, 6);
  Session session;
  const CompiledQuery* query = *session.Compile(kPattern);
  StoreSnapshot snapshot = store.Snapshot();
  for (auto _ : state) {
    auto results = store.QueryAll(session, *query, snapshot);
    benchmark::DoNotOptimize(results.size());
  }
  state.counters["docs"] = 24.0;
  state.counters["threads"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_Store_QueryAll)->Arg(1)->Arg(4);

/// Edit-then-requery serving workload (DESIGN.md §1.16): a CDE rotation
/// edit followed by range(1) re-queries of the same document. The commit
/// threads the edit's dirty path to the prepared-state cache, so the first
/// re-query splice-repairs O(log d) node matrices instead of re-filling the
/// document -- re-query cost is sublinear across 10^4..10^6 characters.
/// Only the queries are timed; the edit runs outside the clock.
void BM_Store_EditThenRequery(benchmark::State& state) {
  DocumentStore store;
  Rng rng(13);
  WriteBatch ingest;
  ingest.Insert(DnaLike(rng, static_cast<std::size_t>(state.range(0)), 8, 32));
  if (!store.Commit(ingest).ok()) std::abort();
  Session session;
  const CompiledQuery* query = *session.Compile(kPattern);
  if (!session.Evaluate(*query, store.Snapshot(), 1).ok()) std::abort();  // warm
  const uint64_t length = store.Snapshot().LengthOf(1);
  const std::string expr =
      "extract(concat(D1, D1), 9, " + std::to_string(length + 8) + ")";
  const int64_t queries = state.range(1);
  for (auto _ : state) {
    state.PauseTiming();
    if (!store.EditDocument(1, expr).ok()) std::abort();
    StoreSnapshot snapshot = store.Snapshot();
    state.ResumeTiming();
    for (int64_t q = 0; q < queries; ++q) {
      benchmark::DoNotOptimize(session.Evaluate(*query, snapshot, 1));
    }
  }
  const PreparedCacheStats stats = store.cache().stats();
  state.counters["doc_bytes"] = static_cast<double>(length);
  state.counters["spliced"] = static_cast<double>(stats.spliced);
  state.counters["refilled_nodes"] = static_cast<double>(stats.refilled_nodes);
  state.counters["reachable_nodes"] =
      static_cast<double>(store.Stats().reachable_nodes);
}
BENCHMARK(BM_Store_EditThenRequery)
    ->Args({10'000, 1})
    ->Args({100'000, 1})
    ->Args({1'000'000, 1})
    ->Args({100'000, 8});

/// The from-scratch contrast: a 1-byte cache budget retains nothing, so
/// every re-query after an edit pays a whole-document matrix fill -- linear
/// in the (compressed) document, versus the sublinear splice path above.
void BM_Store_EditThenRequeryScratch(benchmark::State& state) {
  StoreOptions options;
  options.cache_budget_bytes = 1;  // every retention evicts immediately
  DocumentStore store(options);
  Rng rng(13);
  WriteBatch ingest;
  ingest.Insert(DnaLike(rng, static_cast<std::size_t>(state.range(0)), 8, 32));
  if (!store.Commit(ingest).ok()) std::abort();
  Session session;
  const CompiledQuery* query = *session.Compile(kPattern);
  const uint64_t length = store.Snapshot().LengthOf(1);
  const std::string expr =
      "extract(concat(D1, D1), 9, " + std::to_string(length + 8) + ")";
  for (auto _ : state) {
    state.PauseTiming();
    if (!store.EditDocument(1, expr).ok()) std::abort();
    StoreSnapshot snapshot = store.Snapshot();
    state.ResumeTiming();
    benchmark::DoNotOptimize(session.Evaluate(*query, snapshot, 1));
  }
  state.counters["doc_bytes"] = static_cast<double>(length);
  state.counters["reachable_nodes"] =
      static_cast<double>(store.Stats().reachable_nodes);
}
BENCHMARK(BM_Store_EditThenRequeryScratch)
    ->Args({10'000, 1})
    ->Args({100'000, 1})
    ->Args({1'000'000, 1});

/// Returns a persistence directory with no stale blob/log from prior runs.
std::string FreshPersistDir(const char* tag) {
  const std::string dir = std::string("/tmp/spanners_bench_") + tag;
  std::remove(SnapshotPath(dir).c_str());
  std::remove(WalPath(dir).c_str());
  return dir;
}

/// Snapshot save cost vs corpus size: one deterministic serialization pass
/// over the reachable arena plus the fsync'd tmp+rename publish.
void BM_Store_SaveSnapshot(benchmark::State& state) {
  DocumentStore store;
  FillStore(&store, static_cast<std::size_t>(state.range(0)), 4);
  const std::string dir = FreshPersistDir("save");
  for (auto _ : state) {
    if (!store.SaveSnapshot(dir).ok()) std::abort();
  }
  state.counters["docs"] = static_cast<double>(store.Stats().num_documents);
  state.counters["reachable_nodes"] =
      static_cast<double>(store.Stats().reachable_nodes);
}
BENCHMARK(BM_Store_SaveSnapshot)->Arg(64)->Arg(1024);

/// Mapped open cost vs corpus size: validates the header and offset table,
/// maps the node records zero-copy, and resumes the (empty) commit log.
/// The cost tracks the O(docs) metadata sections (12 bytes/doc), never the
/// node payload or text bytes -- the lazy-open claim of DESIGN.md §1.13.
/// Contrast reachable_nodes (untouched at open) with the per-doc slope.
void BM_Store_OpenMmap(benchmark::State& state) {
  const std::string dir = FreshPersistDir("open");
  {
    DocumentStore store;
    FillStore(&store, static_cast<std::size_t>(state.range(0)), 4);
    if (!store.SaveSnapshot(dir).ok()) std::abort();
  }
  StoreOptions options;
  options.gc_min_garbage_ratio = 2.0;  // never compact during the measurement
  uint64_t reachable = 0;
  for (auto _ : state) {
    auto opened = DocumentStore::Open(dir, options);
    if (!opened.ok()) std::abort();
    reachable = (*opened)->Stats().reachable_nodes;
    benchmark::DoNotOptimize(*opened);
  }
  state.counters["docs"] = static_cast<double>(state.range(0));
  state.counters["reachable_nodes"] = static_cast<double>(reachable);
}
BENCHMARK(BM_Store_OpenMmap)->Arg(64)->Arg(1024)->Arg(8192);

/// Recovery cost vs commit-log length: every open after the snapshot
/// replays the durable record suffix (deterministic batch re-execution).
void BM_Store_WalReplay(benchmark::State& state) {
  const std::string dir = FreshPersistDir("replay");
  StoreOptions options;
  options.gc_min_garbage_ratio = 2.0;  // keep every commit in the log
  {
    auto opened = DocumentStore::Open(dir, options);
    if (!opened.ok()) std::abort();
    Rng rng(11);
    for (int64_t i = 0; i < state.range(0); ++i) {
      WriteBatch batch;
      batch.Insert(BoilerplateText(rng, 1, 0.02));
      if (!(*opened)->Commit(batch).ok()) std::abort();
    }
  }
  uint64_t replayed = 0;
  for (auto _ : state) {
    auto opened = DocumentStore::Open(dir, options);
    if (!opened.ok()) std::abort();
    // Genesis blob is version 0 and GC never rolls it here, so the
    // recovered version *is* the number of log records replayed.
    replayed = (*opened)->Snapshot().version();
    benchmark::DoNotOptimize(*opened);
  }
  state.counters["replayed_commits"] = static_cast<double>(replayed);
}
BENCHMARK(BM_Store_WalReplay)->Arg(16)->Arg(256);

}  // namespace
}  // namespace spanners

BENCHMARK_MAIN();
