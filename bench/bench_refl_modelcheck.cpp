// Experiment E5 (DESIGN.md): Section 3.3 -- ModelChecking for refl-spanners
// runs in linear time (same shape as for regular spanners), thanks to
// reference arcs becoming O(1) hash-checked jumps.
//
// Expected shape: refl ModelCheck time grows linearly in |D| with a slope
// comparable to regular ModelCheck; the tuple is checked at the far end of
// the document so the whole input is always traversed.
#include <benchmark/benchmark.h>

#include "core/decision.hpp"
#include "refl/refl_eval.hpp"
#include "refl/refl_spanner.hpp"
#include "util/random.hpp"

namespace spanners {
namespace {

struct Instance {
  std::string document;
  SpanTuple tuple;
};

/// Document: noise + P + noise + P with P of length 32; tuple marks the
/// first occurrence as x.
Instance MakeInstance(std::size_t n) {
  Rng rng(11);
  std::string noise = RandomString(rng, "abc", n / 2);
  const std::string passage = RandomString(rng, "ab", 32);
  std::string doc = noise + passage + RandomString(rng, "abc", n / 2) + passage;
  Instance instance;
  instance.tuple = SpanTuple::Of({Span(static_cast<Position>(noise.size() + 1),
                                       static_cast<Position>(noise.size() + 33))});
  instance.document = std::move(doc);
  return instance;
}

void BM_ReflModelCheck(benchmark::State& state) {
  const ReflSpanner spanner = ReflSpanner::Compile(".*{x: (a|b)+}.*&x;");
  const Instance instance = MakeInstance(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(spanner.ModelCheck(instance.document, instance.tuple));
  }
  state.SetComplexityN(state.range(0));
  state.counters["holds"] = spanner.ModelCheck(instance.document, instance.tuple) ? 1 : 0;
}
BENCHMARK(BM_ReflModelCheck)->RangeMultiplier(4)->Range(1 << 10, 1 << 16)
    ->Complexity(benchmark::oN);

void BM_RegularModelCheck_Baseline(benchmark::State& state) {
  // The regular analogue (no reference): the slope to compare against.
  const RegularSpanner spanner = RegularSpanner::Compile(".*{x: (a|b)+}.*");
  const Instance instance = MakeInstance(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(spanner.ModelCheck(instance.document, instance.tuple));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_RegularModelCheck_Baseline)->RangeMultiplier(4)->Range(1 << 10, 1 << 16)
    ->Complexity(benchmark::oN);

void BM_ReflNonEmptiness_SmallDocs(benchmark::State& state) {
  // NonEmptiness stays NP-hard: exhaustive search over candidate spans.
  // Kept on small documents; the growth is the point.
  const ReflSpanner spanner = ReflSpanner::Compile(".*{x: (a|b)+}.*&x;.*");
  Rng rng(3);
  const std::string doc = RandomString(rng, "ab", static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ReflNonEmptiness(spanner, doc));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ReflNonEmptiness_SmallDocs)->RangeMultiplier(2)->Range(16, 256);

}  // namespace
}  // namespace spanners
