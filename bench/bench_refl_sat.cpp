// Experiment E6 (DESIGN.md): Section 3.3 -- Satisfiability is polynomial for
// refl-spanners but intractable for core spanners.
//
// Expected shape: ReflSatisfiability time grows mildly with the spanner
// size; the equivalent core spanner decided by bounded document search
// explodes with the search bound.
#include <benchmark/benchmark.h>

#include <string>

#include "core/decision.hpp"
#include "refl/refl_decision.hpp"
#include "refl/refl_spanner.hpp"
#include "refl/refl_to_core.hpp"

namespace spanners {
namespace {

/// A chain of k captured blocks, each referenced once later:
/// {x1: a+b} ... {xk: a+b} c &x1 ... &xk
std::string ChainPattern(int k) {
  std::string pattern;
  for (int i = 1; i <= k; ++i) pattern += "{x" + std::to_string(i) + ": a+b}";
  pattern += "c";
  for (int i = 1; i <= k; ++i) pattern += "&x" + std::to_string(i) + ";";
  return pattern;
}

void BM_ReflSatisfiability(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const ReflSpanner spanner = ReflSpanner::Compile(ChainPattern(k));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ReflSatisfiability(spanner));
  }
  state.counters["k"] = static_cast<double>(k);
  state.counters["nfa_states"] = static_cast<double>(spanner.nfa().num_states());
}
BENCHMARK(BM_ReflSatisfiability)->DenseRange(1, 8);

void BM_CoreSatisfiabilityBounded(benchmark::State& state) {
  // The same spanner, translated to a core spanner (Section 3.2) and
  // decided by bounded search: the minimal witness has length 4k + 1, so
  // the bound must grow with k -- and the search space with it.
  const int k = static_cast<int>(state.range(0));
  const ReflSpanner spanner = ReflSpanner::Compile(ChainPattern(k));
  const auto core = ReflToCore(spanner);
  if (!core) {
    state.SkipWithError("translation refused");
    return;
  }
  const std::size_t bound = static_cast<std::size_t>(4 * k + 1);
  bool satisfiable = false;
  for (auto _ : state) {
    satisfiable = CoreSatisfiableBounded(*core, "abc", bound);
    benchmark::DoNotOptimize(satisfiable);
  }
  state.counters["k"] = static_cast<double>(k);
  state.counters["satisfiable"] = satisfiable ? 1 : 0;
}
BENCHMARK(BM_CoreSatisfiabilityBounded)->DenseRange(1, 2);

void BM_ReflSatisfiability_Unsatisfiable(benchmark::State& state) {
  // Emptiness of the capture body must propagate: still polynomial.
  const ReflSpanner spanner = ReflSpanner::Compile("{x: []}c&x;");
  for (auto _ : state) {
    benchmark::DoNotOptimize(ReflSatisfiability(spanner));
  }
  state.counters["satisfiable"] = ReflSatisfiability(spanner) ? 1 : 0;
}
BENCHMARK(BM_ReflSatisfiability_Unsatisfiable);

}  // namespace
}  // namespace spanners
