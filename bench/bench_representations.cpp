// Experiment E11 (DESIGN.md): Section 2.2 -- representation ablation.
// The same spanner evaluated through (a) the determinised extended VA with
// the two-phase enumeration and (b) naive product-DFS over the
// nondeterministic vset-automaton; plus the determinisation blow-up itself.
//
// Expected shape: eDVA evaluation scales linearly and beats the naive DFS
// by a growing factor; determinisation size stays moderate for typical
// extraction regexes but can grow with alternation-heavy patterns.
#include <benchmark/benchmark.h>

#include "core/extended_va.hpp"
#include "core/regex_parser.hpp"
#include "core/regular_spanner.hpp"
#include "engine/session.hpp"
#include "slp/slp_builder.hpp"
#include "util/random.hpp"

namespace spanners {
namespace {

const char* kPattern = "(a|b)*{x: a(a|b)?}{y: b+}(a|b)*";

void BM_Repr_EdvaEvaluate(benchmark::State& state) {
  const RegularSpanner spanner = RegularSpanner::Compile(kPattern);
  Rng rng(2);
  const std::string doc = RandomString(rng, "ab", static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(spanner.Evaluate(doc));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Repr_EdvaEvaluate)->RangeMultiplier(2)->Range(64, 1024);

void BM_Repr_NaiveEvaluate(benchmark::State& state) {
  const RegularSpanner spanner = RegularSpanner::Compile(kPattern);
  Rng rng(2);
  const std::string doc = RandomString(rng, "ab", static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(spanner.EvaluateNaive(doc));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Repr_NaiveEvaluate)->RangeMultiplier(2)->Range(64, 512);

void BM_Repr_DeterminizationBlowup(benchmark::State& state) {
  // Alternation ladders: (a|b)...{x: ...} with k alternatives.
  const int k = static_cast<int>(state.range(0));
  std::string pattern = "(";
  for (int i = 0; i < k; ++i) {
    if (i > 0) pattern += "|";
    pattern += "a(a|b)";
    pattern += std::to_string(0);  // literal digit, widens the alphabet
  }
  pattern += ")*{x: a+}";
  std::size_t nondet_states = 0, det_states = 0;
  for (auto _ : state) {
    const VsetAutomaton vset = VsetAutomaton::FromRegex(MustParse(pattern));
    const ExtendedVA eva = ExtendedVA::FromVset(vset);
    const ExtendedVA det = eva.Determinized();
    nondet_states = eva.num_states();
    det_states = det.num_states();
    benchmark::DoNotOptimize(det_states);
  }
  state.counters["k"] = static_cast<double>(k);
  state.counters["nondet_states"] = static_cast<double>(nondet_states);
  state.counters["det_states"] = static_cast<double>(det_states);
}
BENCHMARK(BM_Repr_DeterminizationBlowup)->DenseRange(1, 5);

void BM_Repr_NormalizationRoundTrip(benchmark::State& state) {
  // eDVA -> normalised vset-automaton (Option 1 of §2.2) -> eDVA: the
  // canonicalisation used by containment/equivalence.
  const RegularSpanner spanner = RegularSpanner::Compile(kPattern);
  for (auto _ : state) {
    const VsetAutomaton normalized = spanner.edva().ToNormalizedVset();
    const ExtendedVA round = ExtendedVA::FromVset(normalized).Determinized();
    benchmark::DoNotOptimize(round.num_states());
  }
}
BENCHMARK(BM_Repr_NormalizationRoundTrip);

// --- the unified engine (DESIGN.md §1.8) -----------------------------------
// The same pattern through the Session facade: each stack forced via the
// plan knob, plus the planner's own pick ("auto"), on a plain and on a
// Re-Pair-compressed representation of the same document. The acceptance
// bar for the planner: "auto" must stay within 2x of the best forced plan
// at every size.
void BM_Engine_Evaluate(benchmark::State& state, std::optional<PlanKind> plan,
                        bool compressed) {
  EngineOptions options;
  options.force_plan = plan;
  options.threads = 1;
  Session session(options);
  Expected<const CompiledQuery*> query = session.Compile(kPattern);
  Rng rng(2);
  const std::string text = RandomString(rng, "ab", static_cast<std::size_t>(state.range(0)));
  Slp slp;
  const Document document = compressed
                                ? Document::FromSlp(&slp, BuildRePair(slp, text))
                                : Document::FromView(text);
  // Warm the lazy per-representation preparation (determinisation, SLP
  // matrices, materialisation) so the loop measures evaluation only.
  benchmark::DoNotOptimize(session.Evaluate(**query, document));
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.Evaluate(**query, document));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK_CAPTURE(BM_Engine_Evaluate, auto_plain, std::nullopt, false)
    ->RangeMultiplier(2)->Range(64, 512);
BENCHMARK_CAPTURE(BM_Engine_Evaluate, auto_compressed, std::nullopt, true)
    ->RangeMultiplier(2)->Range(64, 512);
BENCHMARK_CAPTURE(BM_Engine_Evaluate, forced_naive_dfs_plain, PlanKind::kNaiveDfs, false)
    ->RangeMultiplier(2)->Range(64, 512);
BENCHMARK_CAPTURE(BM_Engine_Evaluate, forced_edva_plain, PlanKind::kEdva, false)
    ->RangeMultiplier(2)->Range(64, 512);
BENCHMARK_CAPTURE(BM_Engine_Evaluate, forced_refl_plain, PlanKind::kRefl, false)
    ->RangeMultiplier(2)->Range(64, 512);
BENCHMARK_CAPTURE(BM_Engine_Evaluate, forced_slp_matrix_plain, PlanKind::kSlpMatrix, false)
    ->RangeMultiplier(2)->Range(64, 512);
BENCHMARK_CAPTURE(BM_Engine_Evaluate, forced_edva_compressed, PlanKind::kEdva, true)
    ->RangeMultiplier(2)->Range(64, 512);
BENCHMARK_CAPTURE(BM_Engine_Evaluate, forced_slp_matrix_compressed, PlanKind::kSlpMatrix, true)
    ->RangeMultiplier(2)->Range(64, 512);

}  // namespace
}  // namespace spanners
