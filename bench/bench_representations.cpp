// Experiment E11 (DESIGN.md): Section 2.2 -- representation ablation.
// The same spanner evaluated through (a) the determinised extended VA with
// the two-phase enumeration and (b) naive product-DFS over the
// nondeterministic vset-automaton; plus the determinisation blow-up itself.
//
// Expected shape: eDVA evaluation scales linearly and beats the naive DFS
// by a growing factor; determinisation size stays moderate for typical
// extraction regexes but can grow with alternation-heavy patterns.
#include <benchmark/benchmark.h>

#include "core/extended_va.hpp"
#include "core/regex_parser.hpp"
#include "core/regular_spanner.hpp"
#include "util/random.hpp"

namespace spanners {
namespace {

const char* kPattern = "(a|b)*{x: a(a|b)?}{y: b+}(a|b)*";

void BM_Repr_EdvaEvaluate(benchmark::State& state) {
  const RegularSpanner spanner = RegularSpanner::Compile(kPattern);
  Rng rng(2);
  const std::string doc = RandomString(rng, "ab", static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(spanner.Evaluate(doc));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Repr_EdvaEvaluate)->RangeMultiplier(2)->Range(64, 1024);

void BM_Repr_NaiveEvaluate(benchmark::State& state) {
  const RegularSpanner spanner = RegularSpanner::Compile(kPattern);
  Rng rng(2);
  const std::string doc = RandomString(rng, "ab", static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(spanner.EvaluateNaive(doc));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Repr_NaiveEvaluate)->RangeMultiplier(2)->Range(64, 512);

void BM_Repr_DeterminizationBlowup(benchmark::State& state) {
  // Alternation ladders: (a|b)...{x: ...} with k alternatives.
  const int k = static_cast<int>(state.range(0));
  std::string pattern = "(";
  for (int i = 0; i < k; ++i) {
    if (i > 0) pattern += "|";
    pattern += "a(a|b)";
    pattern += std::to_string(0);  // literal digit, widens the alphabet
  }
  pattern += ")*{x: a+}";
  std::size_t nondet_states = 0, det_states = 0;
  for (auto _ : state) {
    const VsetAutomaton vset = VsetAutomaton::FromRegex(MustParse(pattern));
    const ExtendedVA eva = ExtendedVA::FromVset(vset);
    const ExtendedVA det = eva.Determinized();
    nondet_states = eva.num_states();
    det_states = det.num_states();
    benchmark::DoNotOptimize(det_states);
  }
  state.counters["k"] = static_cast<double>(k);
  state.counters["nondet_states"] = static_cast<double>(nondet_states);
  state.counters["det_states"] = static_cast<double>(det_states);
}
BENCHMARK(BM_Repr_DeterminizationBlowup)->DenseRange(1, 5);

void BM_Repr_NormalizationRoundTrip(benchmark::State& state) {
  // eDVA -> normalised vset-automaton (Option 1 of §2.2) -> eDVA: the
  // canonicalisation used by containment/equivalence.
  const RegularSpanner spanner = RegularSpanner::Compile(kPattern);
  for (auto _ : state) {
    const VsetAutomaton normalized = spanner.edva().ToNormalizedVset();
    const ExtendedVA round = ExtendedVA::FromVset(normalized).Determinized();
    benchmark::DoNotOptimize(round.num_states());
  }
}
BENCHMARK(BM_Repr_NormalizationRoundTrip);

}  // namespace
}  // namespace spanners
