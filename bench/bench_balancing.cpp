// Experiment E9 (DESIGN.md): Section 4.1 -- strong balancing of SLPs in
// O(|S| * log n) ([36]-style; stands in for [18]'s linear-time theorem, see
// DESIGN.md substitutions), and the resulting 2-shallowness.
//
// Expected shape: Rebalance time grows roughly as |S| * log |D|; the
// rebalanced SLPs are strongly balanced and 2-shallow at every size;
// AVL concatenation cost tracks the height difference, not the lengths.
#include <benchmark/benchmark.h>

#include "slp/avl_grammar.hpp"
#include "slp/balance.hpp"
#include "slp/slp_builder.hpp"
#include "util/common.hpp"
#include "util/random.hpp"

namespace spanners {
namespace {

void BM_Rebalance_RePairOutput(benchmark::State& state) {
  Rng rng(8);
  const std::string doc = DnaLike(rng, static_cast<std::size_t>(state.range(0)), 8, 32);
  for (auto _ : state) {
    state.PauseTiming();
    Slp slp;
    const NodeId root = BuildRePair(slp, doc);
    state.ResumeTiming();
    const NodeId balanced = Rebalance(slp, root);
    benchmark::DoNotOptimize(balanced);
    state.PauseTiming();
    Require(IsStronglyBalanced(slp, balanced), "rebalance broke balance");
    Require(IsShallow(slp, balanced, 2.0), "rebalanced SLP not 2-shallow");
    state.counters["input_nodes"] = static_cast<double>(slp.ReachableSize(root));
    state.counters["output_nodes"] = static_cast<double>(slp.ReachableSize(balanced));
    state.ResumeTiming();
  }
  state.counters["doc_bytes"] = static_cast<double>(doc.size());
}
BENCHMARK(BM_Rebalance_RePairOutput)->RangeMultiplier(4)->Range(1 << 10, 1 << 16)
    ->Iterations(20);  // untimed per-iteration grammar rebuild dominates otherwise

void BM_Rebalance_Caterpillar(benchmark::State& state) {
  // Worst-case input: a left spine of depth |D| (order n); rebalancing must
  // bring the order down to O(log n).
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Slp slp;
    NodeId root = slp.Terminal('a');
    for (int i = 1; i < n; ++i) root = slp.Pair(root, slp.Terminal(i % 2 ? 'b' : 'a'));
    state.ResumeTiming();
    const NodeId balanced = Rebalance(slp, root);
    benchmark::DoNotOptimize(balanced);
    state.PauseTiming();
    state.counters["order_before"] = static_cast<double>(slp.Order(root));
    state.counters["order_after"] = static_cast<double>(slp.Order(balanced));
    state.ResumeTiming();
  }
}
BENCHMARK(BM_Rebalance_Caterpillar)->RangeMultiplier(4)->Range(256, 16384)
    ->Iterations(20);

void BM_AvlConcat_EqualHeights(benchmark::State& state) {
  Rng rng(31);
  Slp slp;
  const NodeId a = BalancedFromString(slp, RandomString(rng, "ab", 1 << 14));
  const NodeId b = BalancedFromString(slp, RandomString(rng, "ab", 1 << 14));
  for (auto _ : state) {
    Slp working = slp;  // keep the arena from growing unboundedly
    benchmark::DoNotOptimize(AvlConcat(working, a, b));
  }
}
BENCHMARK(BM_AvlConcat_EqualHeights);

void BM_AvlConcat_SkewedHeights(benchmark::State& state) {
  // Concatenating a single character onto a huge balanced tree: cost is
  // O(height difference) new nodes, still logarithmic overall.
  Rng rng(32);
  Slp slp;
  const NodeId big =
      BalancedFromString(slp, RandomString(rng, "ab", std::size_t{1} << state.range(0)));
  const NodeId tiny = slp.Terminal('c');
  for (auto _ : state) {
    Slp working = slp;
    benchmark::DoNotOptimize(AvlConcat(working, big, tiny));
  }
  state.counters["big_order"] = static_cast<double>(slp.Order(big));
}
BENCHMARK(BM_AvlConcat_SkewedHeights)->DenseRange(10, 18, 4);

}  // namespace
}  // namespace spanners
