#!/usr/bin/env python3
"""Validate an OpenMetrics text exposition produced by the spanners exporter.

Checks (DESIGN.md §1.14):
  - the file terminates with the mandatory ``# EOF`` line;
  - every sample line parses and its metric name matches the OpenMetrics
    name grammar ``[a-zA-Z_:][a-zA-Z0-9_:]*``;
  - every sample belongs to a family announced by a preceding ``# TYPE``
    line, and families are contiguous (no interleaving);
  - counter samples carry the ``_total`` suffix;
  - histogram families expose ``_bucket{le=...}`` samples with strictly
    increasing ``le`` thresholds and non-decreasing cumulative counts,
    exactly one ``+Inf`` bucket in last position, plus ``_sum`` and
    ``_count`` samples with ``+Inf`` bucket == ``_count``.

Usage:
  python3 bench/check_openmetrics.py METRICS_FILE \
      [--require-nonzero PREFIX]...

``--require-nonzero spanners_wal_`` demands at least one sample whose name
starts with the prefix and whose value is > 0 -- CI uses this to prove the
serving workload actually exercised the WAL/SLO/planner paths, not just
that the series exist.

Exit status: 0 on success, 1 with one line per problem on stderr otherwise.
"""

import argparse
import re
import sys

NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
# name{labels} value  |  name value   (we never emit timestamps)
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>-?(?:\d+(?:\.\d+)?(?:[eE][+-]?\d+)?|\+?Inf|NaN))$"
)
TYPE_RE = re.compile(r"^# TYPE (?P<name>\S+) (?P<type>counter|gauge|histogram)$")
LE_RE = re.compile(r'le="(?P<le>[^"]*)"')

SUFFIXES = ("_total", "_bucket", "_sum", "_count")


def family_of(name):
    """Sample name -> family name (strip the typed suffix if present)."""
    for suffix in SUFFIXES:
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def check(path, require_nonzero):
    problems = []
    with open(path, "r", encoding="utf-8") as f:
        raw = f.read()
    if not raw.endswith("# EOF\n"):
        problems.append("missing terminating '# EOF' line")
    lines = raw.splitlines()

    types = {}          # family -> declared type
    order = []          # families in declaration order
    samples = {}        # family -> [(name, labels, value)]
    current_family = None
    closed = set()      # families we already moved past

    for lineno, line in enumerate(lines, 1):
        if line == "# EOF":
            if lineno != len(lines):
                problems.append(f"line {lineno}: '# EOF' before end of file")
            continue
        if line.startswith("# TYPE "):
            m = TYPE_RE.match(line)
            if not m:
                problems.append(f"line {lineno}: malformed TYPE line: {line!r}")
                continue
            name = m.group("name")
            if not NAME_RE.match(name):
                problems.append(f"line {lineno}: invalid metric name {name!r}")
            if name in types:
                problems.append(f"line {lineno}: duplicate TYPE for {name!r}")
            types[name] = m.group("type")
            order.append(name)
            if current_family is not None:
                closed.add(current_family)
            current_family = name
            continue
        if line.startswith("#"):
            continue  # other comments are legal
        m = SAMPLE_RE.match(line)
        if not m:
            problems.append(f"line {lineno}: unparseable sample: {line!r}")
            continue
        name = m.group("name")
        # A full-name TYPE match wins over suffix stripping: a gauge may
        # legitimately be named ..._total (e.g. spanners_store_nodes_total).
        family = name if name in types else family_of(name)
        if family not in types:
            problems.append(
                f"line {lineno}: sample {name!r} has no preceding TYPE line")
            continue
        if family != current_family:
            if family in closed:
                problems.append(
                    f"line {lineno}: family {family!r} interleaved with others")
            else:
                problems.append(
                    f"line {lineno}: sample {name!r} outside its TYPE block")
        samples.setdefault(family, []).append(
            (name, m.group("labels") or "", m.group("value")))

    for family in order:
        rows = samples.get(family, [])
        kind = types[family]
        if kind == "counter":
            for name, _, _ in rows:
                if name != family + "_total":
                    problems.append(
                        f"counter {family!r}: sample {name!r} lacks _total")
        elif kind == "gauge":
            for name, _, _ in rows:
                if name != family:
                    problems.append(
                        f"gauge {family!r}: unexpected sample {name!r}")
        elif kind == "histogram":
            problems.extend(check_histogram(family, rows))

    for prefix in require_nonzero:
        if not any(
            float(value) > 0
            for rows in samples.values()
            for name, _, value in rows
            if name.startswith(prefix) and value not in ("+Inf", "Inf", "NaN")
        ):
            problems.append(
                f"--require-nonzero {prefix!r}: no sample with value > 0")
    return problems


def check_histogram(family, rows):
    problems = []
    buckets = []  # (le_float, count)
    inf_count = None
    count = None
    has_sum = False
    for name, labels, value in rows:
        if name == family + "_bucket":
            m = LE_RE.search(labels)
            if not m:
                problems.append(f"histogram {family!r}: bucket without le label")
                continue
            le = m.group("le")
            if le == "+Inf":
                if inf_count is not None:
                    problems.append(f"histogram {family!r}: duplicate +Inf bucket")
                inf_count = int(float(value))
            else:
                if inf_count is not None:
                    problems.append(
                        f"histogram {family!r}: finite bucket after +Inf")
                buckets.append((float(le), int(float(value))))
        elif name == family + "_sum":
            has_sum = True
        elif name == family + "_count":
            count = int(float(value))
        else:
            problems.append(f"histogram {family!r}: unexpected sample {name!r}")
    if inf_count is None:
        problems.append(f"histogram {family!r}: missing +Inf bucket")
    if count is None:
        problems.append(f"histogram {family!r}: missing _count")
    if not has_sum:
        problems.append(f"histogram {family!r}: missing _sum")
    for i in range(1, len(buckets)):
        if buckets[i][0] <= buckets[i - 1][0]:
            problems.append(
                f"histogram {family!r}: le thresholds not strictly increasing")
        if buckets[i][1] < buckets[i - 1][1]:
            problems.append(
                f"histogram {family!r}: cumulative counts decreased at "
                f"le={buckets[i][0]:g}")
    if buckets and inf_count is not None and inf_count < buckets[-1][1]:
        problems.append(f"histogram {family!r}: +Inf below last finite bucket")
    if inf_count is not None and count is not None and inf_count != count:
        problems.append(
            f"histogram {family!r}: +Inf bucket ({inf_count}) != _count ({count})")
    return problems


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("metrics_file")
    parser.add_argument(
        "--require-nonzero", action="append", default=[], metavar="PREFIX",
        help="require >=1 sample with this name prefix and value > 0")
    args = parser.parse_args()

    problems = check(args.metrics_file, args.require_nonzero)
    if problems:
        for problem in problems:
            print(f"check_openmetrics: {problem}", file=sys.stderr)
        return 1
    print(f"check_openmetrics: {args.metrics_file} OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
