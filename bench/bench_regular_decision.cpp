// Experiment E2 (DESIGN.md): Section 2.4 -- the evaluation and static
// analysis problems for *regular* spanners are tractable.
//
// Expected shape: ModelChecking and NonEmptiness linear in |D|;
// Satisfiability and Hierarchicality independent of any document;
// Containment feasible on moderate automata (PSpace-complete in general).
#include <benchmark/benchmark.h>

#include "core/decision.hpp"
#include "util/random.hpp"

namespace spanners {
namespace {

std::string Document(std::size_t n) {
  Rng rng(7);
  return RandomString(rng, "ab", n);
}

void BM_Regular_ModelCheck(benchmark::State& state) {
  const RegularSpanner spanner = RegularSpanner::Compile("{x: (a|b)*}{y: b}{z: (a|b)*}");
  std::string doc = Document(static_cast<std::size_t>(state.range(0)));
  doc[doc.size() / 2] = 'b';
  const Position mid = static_cast<Position>(doc.size() / 2 + 1);
  const SpanTuple tuple = SpanTuple::Of(
      {Span(1, mid), Span(mid, mid + 1), Span(mid + 1, static_cast<Position>(doc.size() + 1))});
  for (auto _ : state) {
    benchmark::DoNotOptimize(RegularModelCheck(spanner, doc, tuple));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Regular_ModelCheck)->RangeMultiplier(4)->Range(1 << 10, 1 << 16)
    ->Complexity(benchmark::oN);

void BM_Regular_NonEmptiness(benchmark::State& state) {
  const RegularSpanner spanner = RegularSpanner::Compile("(a|b)*{x: ab}ba(a|b)*");
  const std::string doc = Document(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(RegularNonEmptiness(spanner, doc));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Regular_NonEmptiness)->RangeMultiplier(4)->Range(1 << 10, 1 << 16)
    ->Complexity(benchmark::oN);

void BM_Regular_Satisfiability(benchmark::State& state) {
  const RegularSpanner spanner =
      RegularSpanner::Compile("{x: (a|b)*}(c|d)*{y: (a|c)+}{z: d}");
  for (auto _ : state) {
    benchmark::DoNotOptimize(RegularSatisfiability(spanner));
  }
}
BENCHMARK(BM_Regular_Satisfiability);

void BM_Regular_Hierarchicality(benchmark::State& state) {
  // A join producing overlapping spans: the check must detect it.
  const auto joined = SpannerExpr::Join(SpannerExpr::Parse("{x: aa}a(a|b)*"),
                                        SpannerExpr::Parse("a{y: aa}(a|b)*"));
  const RegularSpanner spanner = CompileRegular(joined);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RegularHierarchicality(spanner));
  }
  state.counters["hierarchical"] = RegularHierarchicality(spanner) ? 1 : 0;
}
BENCHMARK(BM_Regular_Hierarchicality);

void BM_Regular_Equivalence(benchmark::State& state) {
  const RegularSpanner a = RegularSpanner::Compile("{x: (a|b)*abb}");
  const RegularSpanner b = RegularSpanner::Compile("{x: (b|a)*abb}");
  for (auto _ : state) {
    benchmark::DoNotOptimize(SpannerEquivalent(a, b));
  }
  state.counters["equivalent"] = SpannerEquivalent(a, b) ? 1 : 0;
}
BENCHMARK(BM_Regular_Equivalence);

}  // namespace
}  // namespace spanners
