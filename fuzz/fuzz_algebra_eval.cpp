/// \file fuzz_algebra_eval.cpp
/// \brief Fuzz target: algebra evaluation (∪/π/⋈/ς=) vs the independent
/// algebra oracle (DESIGN.md §1.11).
///
/// The input bytes drive ByteDecisions, which steers RandomSpannerExpr and
/// RandomDocument: the fuzzer mutates the *structure* of the generated
/// expression, never its syntax, so every input is a valid workload. Each
/// one is evaluated three ways -- the production algebra tree
/// (SpannerExpr::Evaluate), the engine's planner-chosen path, and the
/// OracleEvaluateSpec set semantics -- and all three must agree.
#include <string>

#include "engine/document.hpp"
#include "engine/session.hpp"
#include "testing/generators.hpp"
#include "testing/oracle.hpp"

#include "fuzz_driver.hpp"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  namespace t = spanners::testing;

  t::ByteDecisions decisions(data, size);
  t::GeneratorOptions options;
  options.max_expr_depth = 2;
  options.max_sub_depth = 1;
  options.max_doc_length = 8;

  const t::ExprSpec spec = t::RandomSpannerExpr(decisions, options);
  const std::string document = t::RandomDocument(decisions, options);

  const spanners::SpannerExprPtr expr = t::BuildExpr(spec);
  const std::vector<std::string> schema = expr->variables().names();

  const t::OracleRelation oracle = t::OracleEvaluateSpec(spec, document);
  const spanners::SpanRelation expected = t::AlignOracleRelation(oracle, schema);

  // Production path 1: the materialised algebra semantics.
  const spanners::SpanRelation algebra = expr->Evaluate(document);
  if (algebra != expected) {
    t::FuzzAbort("expr: " + spec.ToString() + "\ndocument: \"" + document +
                 "\"\nalgebra Evaluate:\n" + spanners::RelationToString(algebra, schema) +
                 "oracle:\n" + spanners::RelationToString(expected, schema));
  }

  // Production path 2: the engine (compile-algebra + planner-chosen stack).
  spanners::Session session(spanners::EngineOptions{.force_plan = {}, .threads = 1});
  const spanners::CompiledQuery* query = session.CompileExpr(expr);
  const spanners::Document doc = spanners::Document::FromText(document);
  const spanners::Expected<spanners::SpanRelation> engine = session.Evaluate(*query, doc);
  if (!engine.ok()) {
    t::FuzzAbort("expr: " + spec.ToString() + "\ndocument: \"" + document +
                 "\"\nengine error: " + engine.error());
  }
  const spanners::SpanRelation engine_aligned =
      t::AlignOracleRelation({query->variables().names(), *engine}, schema);
  if (engine_aligned != expected) {
    t::FuzzAbort("expr: " + spec.ToString() + "\ndocument: \"" + document +
                 "\"\nengine:\n" + spanners::RelationToString(engine_aligned, schema) +
                 "oracle:\n" + spanners::RelationToString(expected, schema));
  }
  return 0;
}
