/// \file fuzz_driver.hpp
/// \brief Shared harness for the fuzz targets (DESIGN.md §1.11).
///
/// Every target defines the libFuzzer entry point
///     extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t n);
/// and includes this header, which supplies a standalone main() unless
/// SPANNERS_FUZZ_LIBFUZZER is defined (the Clang -fsanitize=fuzzer build,
/// where libFuzzer brings its own). The standalone driver makes failures
/// reproducible without libFuzzer:
///
///     fuzz_parser --replay crash-123 corpus/parser/   # files and/or dirs
///     fuzz_parser --rand 10000 42                     # N seeded random inputs
///
/// Divergences abort() after printing a repro dump, which both drivers (and
/// ASan) report as a crash.
#pragma once

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "util/random.hpp"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace spanners {
namespace testing {

/// Divergence report + abort. The message should contain everything needed
/// to reproduce by hand (pattern, document, both relations, ...).
[[noreturn]] inline void FuzzAbort(const std::string& message) {
  std::fprintf(stderr, "=== FUZZ DIVERGENCE ===\n%s\n", message.c_str());
  std::abort();
}

#ifndef SPANNERS_FUZZ_LIBFUZZER

namespace fuzz_driver_internal {

inline int ReplayFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size());
  return 0;
}

inline int Main(int argc, char** argv) {
  std::vector<std::string> paths;
  uint64_t rand_count = 0;
  uint64_t rand_seed = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--replay") continue;  // optional marker; paths follow anyway
    if (arg == "--rand") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--rand needs a count\n");
        return 1;
      }
      rand_count = std::strtoull(argv[++i], nullptr, 10);
      if (i + 1 < argc && std::isdigit(static_cast<unsigned char>(argv[i + 1][0]))) {
        rand_seed = std::strtoull(argv[++i], nullptr, 10);
      }
      continue;
    }
    paths.push_back(arg);
  }
  if (paths.empty() && rand_count == 0) {
    std::fprintf(stderr,
                 "usage: %s [--replay] <file|dir>...   replay corpus inputs\n"
                 "       %s --rand <count> [seed]      run seeded random inputs\n",
                 argv[0], argv[0]);
    return 1;
  }

  std::size_t replayed = 0;
  for (const std::string& path : paths) {
    std::error_code ec;
    if (std::filesystem::is_directory(path, ec)) {
      std::vector<std::string> files;
      for (const auto& entry : std::filesystem::directory_iterator(path)) {
        if (entry.is_regular_file()) files.push_back(entry.path().string());
      }
      std::sort(files.begin(), files.end());
      for (const std::string& file : files) {
        if (ReplayFile(file) != 0) return 1;
        ++replayed;
      }
    } else {
      if (ReplayFile(path) != 0) return 1;
      ++replayed;
    }
  }

  Rng rng(rand_seed);
  for (uint64_t i = 0; i < rand_count; ++i) {
    std::vector<uint8_t> bytes(rng.NextBelow(96) + 1);
    for (uint8_t& byte : bytes) byte = static_cast<uint8_t>(rng.NextBelow(256));
    LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
  }

  std::printf("ok: %zu file(s) replayed, %llu random input(s)\n", replayed,
              static_cast<unsigned long long>(rand_count));
  return 0;
}

}  // namespace fuzz_driver_internal
#endif  // SPANNERS_FUZZ_LIBFUZZER

}  // namespace testing
}  // namespace spanners

#ifndef SPANNERS_FUZZ_LIBFUZZER
int main(int argc, char** argv) {
  return spanners::testing::fuzz_driver_internal::Main(argc, argv);
}
#endif
