/// \file fuzz_parser.cpp
/// \brief Fuzz target: regex parsing robustness + bounded differential
/// evaluation against the oracle (DESIGN.md §1.11).
///
/// Input layout: raw bytes up to the first NUL are the pattern, everything
/// after it is the document. Every input exercises the parser (which must
/// reject garbage with an error, never crash or abort); inputs that parse
/// and fall within the oracle's complexity budget additionally run all four
/// evaluation stacks through Session::EvaluateWithPlan and compare the
/// relations tuple-for-tuple with OracleEvaluator.
#include <string>
#include <string_view>

#include "core/regex_ast.hpp"
#include "core/regex_parser.hpp"
#include "engine/document.hpp"
#include "engine/session.hpp"
#include "slp/avl_grammar.hpp"
#include "slp/slp.hpp"
#include "testing/oracle.hpp"

#include "fuzz_driver.hpp"

namespace {

using spanners::testing::FuzzAbort;

/// The oracle backtracks exhaustively, so inputs are capped before the
/// differential stage: small automata, short documents, shallow stars.
struct PatternShape {
  std::size_t nodes = 0;
  std::size_t star_depth = 0;
};

PatternShape Measure(const spanners::RegexNode* node) {
  PatternShape shape;
  if (node == nullptr) return shape;
  shape.nodes = 1;
  const bool is_star = node->kind == spanners::RegexKind::kStar ||
                       node->kind == spanners::RegexKind::kPlus;
  for (const auto& child : node->children) {
    const PatternShape inner = Measure(child.get());
    shape.nodes += inner.nodes;
    shape.star_depth = std::max(shape.star_depth, inner.star_depth);
  }
  if (is_star) ++shape.star_depth;
  return shape;
}

std::string Printable(std::string_view text) {
  std::string out;
  for (const char c : text) {
    if (c >= 0x20 && c < 0x7f) {
      out.push_back(c);
    } else {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\x%02x", static_cast<unsigned char>(c));
      out += buffer;
    }
  }
  return out;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view bytes(reinterpret_cast<const char*>(data), size);
  const std::size_t split = bytes.find('\0');
  const std::string pattern(bytes.substr(0, split));
  const std::string document(
      split == std::string_view::npos ? std::string_view() : bytes.substr(split + 1));

  if (pattern.size() > 256) return 0;

  // Stage 1: the parser must handle anything without crashing.
  const spanners::Expected<spanners::Regex> parsed = spanners::ParseRegexChecked(pattern);
  if (!parsed.ok()) return 0;

  // Stage 2: bounded differential evaluation.
  const PatternShape shape = Measure(parsed->root());
  if (shape.nodes > 24 || parsed->variables().size() > 4 || shape.star_depth > 3) {
    return 0;
  }
  const std::size_t doc_cap = shape.star_depth >= 2 ? 8 : 12;
  if (document.size() > doc_cap) return 0;

  const spanners::testing::OracleEvaluator oracle(&*parsed);
  const spanners::SpanRelation expected = oracle.Evaluate(document);

  spanners::Session session(spanners::EngineOptions{.force_plan = {}, .threads = 1});
  const spanners::Expected<const spanners::CompiledQuery*> query =
      session.Compile(pattern);
  if (!query.ok()) return 0;  // e.g. stacks that reject this pattern shape

  const spanners::testing::OracleRelation oracle_relation{
      parsed->variables().names(), expected};
  const spanners::SpanRelation aligned = spanners::testing::AlignOracleRelation(
      oracle_relation, (*query)->variables().names());

  spanners::Slp slp;
  const spanners::NodeId root = spanners::BalancedFromString(slp, document);
  const spanners::Document plain = spanners::Document::FromText(document);
  const spanners::Document compressed = spanners::Document::FromSlp(&slp, root);

  for (const spanners::Document* doc : {&plain, &compressed}) {
    for (const spanners::PlanKind kind :
         {spanners::PlanKind::kNaiveDfs, spanners::PlanKind::kEdva,
          spanners::PlanKind::kRefl, spanners::PlanKind::kSlpMatrix}) {
      const spanners::Expected<spanners::SpanRelation> actual =
          session.EvaluateWithPlan(**query, *doc, kind);
      if (!actual.ok()) continue;  // stack does not support this combination
      if (*actual != aligned) {
        FuzzAbort("pattern: " + Printable(pattern) + "\ndocument: \"" +
                  Printable(document) + "\"\nplan: " +
                  std::string(spanners::PlanKindName(kind)) +
                  (doc == &compressed ? " (compressed)" : " (plain)") +
                  "\nproduction:\n" +
                  spanners::RelationToString(*actual, (*query)->variables().names()) +
                  "oracle:\n" +
                  spanners::RelationToString(aligned, (*query)->variables().names()));
      }
    }
  }
  return 0;
}
