/// \file fuzz_wire_frame.cpp
/// \brief Fuzz target: total decoding of the wire protocol (DESIGN.md §1.15).
///
/// The input bytes are fed to a FrameReader in adversarially-sized chunks
/// (the first byte seeds the chunking), and every payload decoder runs over
/// both the raw input and any payload that survives framing. The contract
/// under test is totality: no crash, no overflow, no unbounded allocation on
/// hostile bytes -- every outcome is a value or a Status. Whenever a decoder
/// accepts, the encode half must round-trip bit-exactly (encode(decode(x))
/// re-decodes to the same value), which pins the two directions together.
#include <string>
#include <string_view>

#include "net/wire.hpp"
#include "util/random.hpp"

#include "fuzz_driver.hpp"

namespace {

using namespace spanners;

void CheckPayloadDecoders(std::string_view payload) {
  namespace t = spanners::testing;
  if (const Expected<QueryRequest> request = DecodeQueryRequest(payload);
      request.ok()) {
    const std::string bytes = EncodeQueryRequest(*request);
    const Expected<QueryRequest> again = DecodeQueryRequest(bytes);
    if (!again.ok() || again->pattern != request->pattern ||
        again->snapshot_versions != request->snapshot_versions ||
        again->docs != request->docs ||
        again->max_tuples != request->max_tuples) {
      t::FuzzAbort("QueryRequest does not round-trip through re-encode");
    }
  }
  if (const Expected<QueryResponse> response = DecodeQueryResponse(payload);
      response.ok()) {
    const std::string bytes = EncodeQueryResponse(*response);
    const Expected<QueryResponse> again = DecodeQueryResponse(bytes);
    if (!again.ok() ||
        again->snapshot_versions != response->snapshot_versions ||
        again->results.size() != response->results.size()) {
      t::FuzzAbort("QueryResponse does not round-trip through re-encode");
    }
    for (std::size_t i = 0; i < again->results.size(); ++i) {
      const WireDocResult& a = again->results[i];
      const WireDocResult& b = response->results[i];
      if (a.doc != b.doc || a.ok != b.ok || a.error != b.error ||
          a.num_tuples != b.num_tuples || a.tuples != b.tuples) {
        t::FuzzAbort("WireDocResult does not round-trip through re-encode");
      }
    }
  }
  if (const Expected<CommitRequest> request = DecodeCommitRequest(payload);
      request.ok()) {
    const std::string bytes = EncodeCommitRequest(*request);
    if (!DecodeCommitRequest(bytes).ok()) {
      t::FuzzAbort("CommitRequest does not round-trip through re-encode");
    }
  }
  if (const Expected<CommitResponse> response = DecodeCommitResponse(payload);
      response.ok()) {
    const std::string bytes = EncodeCommitResponse(*response);
    const Expected<CommitResponse> again = DecodeCommitResponse(bytes);
    if (!again.ok() || again->created != response->created ||
        again->shard_versions != response->shard_versions) {
      t::FuzzAbort("CommitResponse does not round-trip through re-encode");
    }
  }
  if (const Expected<SnapshotResponse> response = DecodeSnapshotResponse(payload);
      response.ok()) {
    const std::string bytes = EncodeSnapshotResponse(*response);
    const Expected<SnapshotResponse> again = DecodeSnapshotResponse(bytes);
    if (!again.ok() || again->versions != response->versions ||
        again->num_documents != response->num_documents) {
      t::FuzzAbort("SnapshotResponse does not round-trip through re-encode");
    }
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  namespace t = spanners::testing;
  const std::string_view input(reinterpret_cast<const char*>(data), size);

  // Feed the reader in input-derived chunk sizes so reassembly boundaries
  // land everywhere, including mid-header and mid-payload.
  Rng rng(size == 0 ? 1 : 1 + data[0]);
  FrameReader reader;
  std::size_t offset = 0;
  bool errored = false;
  while (offset < input.size() && !errored) {
    const std::size_t chunk =
        std::min<std::size_t>(1 + rng.NextBelow(64), input.size() - offset);
    reader.Feed(input.substr(offset, chunk));
    offset += chunk;
    FrameReader::Frame frame;
    while (reader.Next(&frame)) {
      // A frame that survived framing must re-encode bit-exactly.
      const std::string bytes = EncodeFrame(frame.header.type, frame.header.status,
                                            frame.header.request_id, frame.payload);
      const Expected<FrameHeader> header = DecodeFrameHeader(bytes);
      if (!header.ok() || header->payload_size != frame.payload.size()) {
        t::FuzzAbort("accepted frame does not re-encode to a valid frame");
      }
      CheckPayloadDecoders(frame.payload);
    }
    if (!reader.ok()) {
      // Errors are sticky: every later Next() must keep failing, never
      // resynchronize onto garbage.
      if (reader.Next(&frame) || reader.ok()) {
        t::FuzzAbort("FrameReader error is not sticky");
      }
      errored = true;
    }
  }

  // Every payload decoder must also be total on raw bytes (the server runs
  // them on attacker-controlled payloads behind a valid CRC).
  CheckPayloadDecoders(input);
  return 0;
}
