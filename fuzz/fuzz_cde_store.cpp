/// \file fuzz_cde_store.cpp
/// \brief Fuzz target: DocumentStore commit semantics vs the plain-string
/// ModelStore (DESIGN.md §1.11).
///
/// The input bytes drive ByteDecisions through RandomCdeScript: a sequence
/// of atomic batches (insert / create-from-CDE / edit / drop, with a dash of
/// deliberately invalid positions and dangling document references). Each
/// batch is committed to the production DocumentStore -- with GC forced
/// aggressive, so compaction churn is under test too -- and to the
/// ModelStore; verdicts, created ids, version numbers, and every live
/// document's text must match after every batch.
#include <string>

#include "store/store.hpp"
#include "testing/cde_model.hpp"
#include "testing/generators.hpp"

#include "fuzz_driver.hpp"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  namespace t = spanners::testing;

  t::ByteDecisions decisions(data, size);
  t::CdeScriptOptions options;
  const t::CdeScript script = t::RandomCdeScript(decisions, options);

  spanners::StoreOptions store_options;
  store_options.threads = 1;
  store_options.gc_min_garbage_ratio = 0.0;  // compact eagerly: GC under test
  store_options.gc_min_garbage_nodes = 1;
  spanners::DocumentStore store(store_options);
  t::ModelStore model;

  auto dump = [&script](const std::string& detail) {
    t::FuzzAbort("script:\n" + script.ToString() + detail);
  };

  for (std::size_t b = 0; b < script.batches.size(); ++b) {
    spanners::WriteBatch batch;
    for (const t::ModelOp& op : script.batches[b]) {
      switch (op.kind) {
        case t::ModelOp::Kind::kInsert:
          batch.Insert(op.payload);
          break;
        case t::ModelOp::Kind::kCreate:
          batch.Create(op.payload);
          break;
        case t::ModelOp::Kind::kEdit:
          batch.Edit(op.doc, op.payload);
          break;
        case t::ModelOp::Kind::kDrop:
          batch.Drop(op.doc);
          break;
      }
    }
    const spanners::Expected<spanners::CommitReceipt> receipt = store.Commit(batch);
    const t::ModelCommitResult expected = model.Commit(script.batches[b]);
    const std::string where = "\nbatch: " + std::to_string(b);

    if (receipt.ok() != expected.ok) {
      dump(where + "\nstore: " + (receipt.ok() ? "ok" : receipt.error()) +
           "\nmodel: " + (expected.ok ? "ok" : expected.error));
    }
    if (!expected.ok) continue;

    if (receipt->version != expected.version) {
      dump(where + "\nstore version " + std::to_string(receipt->version) +
           " != model version " + std::to_string(expected.version));
    }
    if (receipt->created.size() != expected.created.size()) {
      dump(where + "\ncreated-id count mismatch");
    }
    for (std::size_t i = 0; i < expected.created.size(); ++i) {
      if (receipt->created[i] != expected.created[i]) {
        dump(where + "\ncreated id " + std::to_string(receipt->created[i]) +
             " != model id " + std::to_string(expected.created[i]));
      }
    }

    const spanners::StoreSnapshot snapshot = store.Snapshot();
    const std::vector<uint64_t> live = model.LiveIds();
    if (snapshot.num_documents() != live.size()) {
      dump(where + "\nstore has " + std::to_string(snapshot.num_documents()) +
           " documents, model has " + std::to_string(live.size()));
    }
    for (const uint64_t id : live) {
      if (!snapshot.Contains(id)) {
        dump(where + "\nmodel document D" + std::to_string(id) + " missing from store");
      }
      const std::string text = snapshot.Text(id);
      if (text != *model.Text(id)) {
        dump(where + "\nD" + std::to_string(id) + ": store \"" + text + "\" != model \"" +
             *model.Text(id) + "\"");
      }
    }
  }
  return 0;
}
